// Property tests for the flat-CSR PositionIndex and the parallel miners:
//
//  (a) every PositionIndex query (both the dense O(1) layout and the
//      compact fallback) matches a naive per-query scan of the raw
//      sequences, on seeded random databases;
//  (b) mining with num_threads = 4 produces output identical to
//      num_threads = 1 — patterns, supports and rules — across seeded
//      random inputs, for the full, closed and rule miners.

#include <gtest/gtest.h>

#include <atomic>

#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/rulemine/rule_miner.h"
#include "src/support/random.h"
#include "src/support/thread_pool.h"
#include "src/trace/position_index.h"

namespace specmine {
namespace {

struct RandomDbParams {
  uint64_t seed;
  size_t num_seqs;
  size_t max_len;
  size_t alphabet;
};

SequenceDatabase RandomDb(const RandomDbParams& p) {
  Rng rng(p.seed);
  SequenceDatabaseBuilder db;
  // Intern the whole alphabet so event ids exist even for events that
  // never occur (the index must answer empty for those).
  for (size_t e = 0; e < p.alphabet; ++e) {
    db.mutable_dictionary()->Intern("e" + std::to_string(e));
  }
  for (size_t s = 0; s < p.num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(p.max_len);
    for (size_t i = 0; i < len; ++i) {
      seq.Append(static_cast<EventId>(rng.Uniform(p.alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

// ---------------------------------------------------------------------------
// (a) CSR index vs naive scans.

std::vector<Pos> NaivePositions(const SequenceDatabase& db, EventId ev,
                                SeqId s) {
  std::vector<Pos> out;
  const EventSpan seq = db[s];
  for (Pos p = 0; p < seq.size(); ++p) {
    if (seq[p] == ev) out.push_back(p);
  }
  return out;
}

class PositionIndexPropertyTest
    : public ::testing::TestWithParam<RandomDbParams> {};

void CheckIndexAgainstNaive(const SequenceDatabase& db,
                            const PositionIndex& index) {
  const size_t num_events = db.dictionary().size();
  size_t naive_total_events = 0;
  for (EventId ev = 0; ev < num_events; ++ev) {
    size_t naive_total = 0;
    size_t naive_seqs = 0;
    for (SeqId s = 0; s < db.size(); ++s) {
      std::vector<Pos> naive = NaivePositions(db, ev, s);
      EXPECT_EQ(index.Positions(ev, s), naive) << "ev=" << ev << " s=" << s;
      naive_total += naive.size();
      if (!naive.empty()) ++naive_seqs;

      const Pos len = static_cast<Pos>(db[s].size());
      for (Pos q = 0; q <= len; ++q) {
        // FirstAfter / FirstAtOrAfter / LastBefore vs scans.
        Pos first_after = kNoPos, first_at = kNoPos, last_before = kNoPos;
        for (Pos p : naive) {
          if (p > q && first_after == kNoPos) first_after = p;
          if (p >= q && first_at == kNoPos) first_at = p;
          if (p < q) last_before = p;
        }
        EXPECT_EQ(index.FirstAfter(ev, s, q), first_after);
        EXPECT_EQ(index.FirstAtOrAfter(ev, s, q), first_at);
        EXPECT_EQ(index.LastBefore(ev, s, q), last_before);
        // CountInRange over a few windows anchored at q.
        for (Pos hi : {q, static_cast<Pos>(q + 2), len}) {
          size_t want = 0;
          for (Pos p : naive) {
            if (p >= q && p <= hi) ++want;
          }
          EXPECT_EQ(index.CountInRange(ev, s, q, hi), q > hi ? 0 : want);
        }
      }
    }
    EXPECT_EQ(index.TotalCount(ev), naive_total);
    EXPECT_EQ(index.SequenceCount(ev), naive_seqs);
    naive_total_events += naive_total;
  }
  // Out-of-range queries answer empty, never crash.
  EXPECT_TRUE(index.Positions(num_events + 7, 0).empty());
  EXPECT_TRUE(index.Positions(0, db.size() + 7).empty());
  EXPECT_EQ(index.FirstAfter(num_events + 7, 0, 0), kNoPos);
  (void)naive_total_events;
}

TEST_P(PositionIndexPropertyTest, DenseLayoutMatchesNaiveScan) {
  SequenceDatabase db = RandomDb(GetParam());
  PositionIndex index(db);
  EXPECT_TRUE(index.dense_layout());
  CheckIndexAgainstNaive(db, index);
}

TEST_P(PositionIndexPropertyTest, SparseFallbackMatchesNaiveScan) {
  SequenceDatabase db = RandomDb(GetParam());
  PositionIndex index(db, /*dense_cell_limit=*/0);  // Force the fallback.
  EXPECT_FALSE(index.dense_layout());
  CheckIndexAgainstNaive(db, index);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, PositionIndexPropertyTest,
    ::testing::Values(RandomDbParams{101, 4, 8, 3},
                      RandomDbParams{102, 6, 10, 5},
                      RandomDbParams{103, 8, 14, 4},
                      RandomDbParams{104, 10, 20, 8},
                      RandomDbParams{105, 3, 30, 2},
                      RandomDbParams{106, 12, 12, 12}));

// ---------------------------------------------------------------------------
// (b) num_threads = 4 output is identical to num_threads = 1.

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<RandomDbParams> {};

TEST_P(ParallelEquivalenceTest, FullMinerIdenticalAcrossThreadCounts) {
  SequenceDatabase db = RandomDb(GetParam());
  for (uint64_t min_sup : {1u, 2u}) {
    IterMinerOptions seq;
    seq.min_support = min_sup;
    seq.num_threads = 1;
    IterMinerOptions par = seq;
    par.num_threads = 4;
    PatternSet a = MineFrequentIterative(db, seq);
    PatternSet b = MineFrequentIterative(db, par);
    EXPECT_EQ(a.items(), b.items()) << "min_sup=" << min_sup;
  }
}

TEST_P(ParallelEquivalenceTest, FullMinerTruncationIdentical) {
  SequenceDatabase db = RandomDb(GetParam());
  IterMinerOptions seq;
  seq.min_support = 1;
  seq.max_patterns = 17;
  seq.num_threads = 1;
  IterMinerOptions par = seq;
  par.num_threads = 4;
  IterMinerStats stats_seq, stats_par;
  PatternSet a = MineFrequentIterative(db, seq, &stats_seq);
  PatternSet b = MineFrequentIterative(db, par, &stats_par);
  EXPECT_EQ(a.items(), b.items());
  EXPECT_EQ(stats_seq.truncated, stats_par.truncated);
  EXPECT_EQ(stats_seq.patterns_emitted, stats_par.patterns_emitted);
}

TEST_P(ParallelEquivalenceTest, ClosedMinerIdenticalAcrossThreadCounts) {
  SequenceDatabase db = RandomDb(GetParam());
  for (uint64_t min_sup : {1u, 2u}) {
    ClosedIterMinerOptions seq;
    seq.min_support = min_sup;
    seq.num_threads = 1;
    ClosedIterMinerOptions par = seq;
    par.num_threads = 4;
    IterMinerStats stats_seq, stats_par;
    PatternSet a = MineClosedIterative(db, seq, &stats_seq);
    PatternSet b = MineClosedIterative(db, par, &stats_par);
    EXPECT_EQ(a.items(), b.items()) << "min_sup=" << min_sup;
    // The closed miner has no truncation, so even the search stats merge
    // to the sequential values.
    EXPECT_EQ(stats_seq.nodes_visited, stats_par.nodes_visited);
    EXPECT_EQ(stats_seq.patterns_emitted, stats_par.patterns_emitted);
    EXPECT_EQ(stats_seq.subtrees_pruned, stats_par.subtrees_pruned);
  }
}

TEST_P(ParallelEquivalenceTest, RuleMinerIdenticalAcrossThreadCounts) {
  SequenceDatabase db = RandomDb(GetParam());
  for (bool non_redundant : {false, true}) {
    RuleMinerOptions seq;
    seq.min_s_support = 2;
    seq.min_confidence = 0.5;
    seq.non_redundant = non_redundant;
    seq.max_premise_length = 3;
    seq.max_consequent_length = 3;
    seq.num_threads = 1;
    RuleMinerOptions par = seq;
    par.num_threads = 4;
    RuleMinerStats stats_seq, stats_par;
    RuleSet a = MineRecurrentRules(db, seq, &stats_seq);
    RuleSet b = MineRecurrentRules(db, par, &stats_par);
    EXPECT_EQ(a.rules(), b.rules()) << "nr=" << non_redundant;
    EXPECT_EQ(stats_seq.premises_enumerated, stats_par.premises_enumerated);
    EXPECT_EQ(stats_seq.candidate_rules, stats_par.candidate_rules);
    EXPECT_EQ(stats_seq.rules_emitted, stats_par.rules_emitted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, ParallelEquivalenceTest,
    ::testing::Values(RandomDbParams{201, 5, 8, 3},
                      RandomDbParams{202, 6, 10, 4},
                      RandomDbParams{203, 8, 12, 5},
                      RandomDbParams{204, 10, 9, 6},
                      RandomDbParams{205, 12, 15, 4}));

// The pool itself: tasks all run, stealing drains skewed queues, Wait is
// re-usable.
TEST(ThreadPoolTest, RunsEveryTaskAndWaits) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 110);
}

}  // namespace
}  // namespace specmine
