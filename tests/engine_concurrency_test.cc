// Concurrent-reader safety for the Engine session façade — the property
// the specmined server leans on (one cached Engine per corpus, shared by
// every connection thread).
//
// The hammer test races many threads into a *cold* session running a mix
// of tasks and pins down the cache contract: exactly one physical index
// build however many requests arrive at once (index_builds() == 1), and
// every concurrent result byte-identical to a sequential baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"

namespace specmine {
namespace {

SequenceDatabase HammerDb() {
  SequenceDatabaseBuilder db;
  db.AddTraceFromString("lock read write unlock lock write unlock");
  db.AddTraceFromString("open read close lock unlock");
  db.AddTraceFromString("lock read unlock open read read close");
  db.AddTraceFromString("open write close open read close");
  db.AddTraceFromString("lock unlock lock read write unlock");
  db.AddTraceFromString("open lock read write unlock close");
  return db.Build();
}

std::string ClosedBaseline(const Engine& engine) {
  ClosedTask task;
  task.options.min_support = 3;
  CollectingPatternSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  EXPECT_TRUE(run.ok());
  PatternSet set = sink.TakeSet();
  set.SortBySupport();
  return set.ToString(engine.database().dictionary());
}

std::string RulesBaseline(const Engine& engine) {
  RulesTask task;
  task.options.min_s_support = 3;
  task.options.min_confidence = 0.5;
  CollectingRuleSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  EXPECT_TRUE(run.ok());
  RuleSet rules = sink.TakeSet();
  rules.SortByQuality();
  std::string out;
  for (const Rule& r : rules.rules()) {
    out += r.ToString(engine.database().dictionary());
    out += '\n';
  }
  return out;
}

TEST(EngineConcurrencyTest, ColdSessionHammerBuildsTheIndexOnce) {
  Engine engine(HammerDb());
  // Baselines from a separate warm session (same database) so the session
  // under test stays cold until the hammer hits it.
  Engine reference(HammerDb());
  const std::string closed_expected = ClosedBaseline(reference);
  const std::string rules_expected = RulesBaseline(reference);

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        if ((t + round) % 2 == 0) {
          if (ClosedBaseline(engine) != closed_expected) ++mismatches;
        } else {
          if (RulesBaseline(engine) != rules_expected) ++mismatches;
        }
        if (::testing::Test::HasFailure()) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The contract the server's index-cache metrics depend on: N requests
  // racing into a cold corpus pay for exactly one build.
  EXPECT_EQ(engine.index_builds(), 1u);
}

TEST(EngineConcurrencyTest, ConcurrentMultiThreadedTasksGetExclusivePools) {
  // Multi-threaded tasks running concurrently must not share a live pool
  // (a ThreadPool fan-out requires an otherwise-idle pool). Exercise the
  // lease path from several threads at once and recheck determinism.
  Engine engine(HammerDb());
  Engine reference(HammerDb());
  GeneratorsTask task;
  task.options.min_support = 2;
  task.options.num_threads = 2;

  const auto mine = [&](const Engine& session) {
    CollectingPatternSink sink;
    Result<RunReport> run = session.Mine(task, sink);
    EXPECT_TRUE(run.ok());
    PatternSet set = sink.TakeSet();
    set.SortBySupport();
    return set.ToString(session.database().dictionary());
  };
  const std::string expected = mine(reference);

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        if (mine(engine) != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.index_builds(), 1u);
}

}  // namespace
}  // namespace specmine
