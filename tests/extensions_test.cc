// Tests for the future-work extensions (paper Section 8): iterative
// pattern generators, backward recurrent rules, pattern/rule ranking, and
// the CSV trace reader.

#include <gtest/gtest.h>

#include <sstream>

#include "src/itermine/generators.h"
#include "src/itermine/qre_verifier.h"
#include "src/rulemine/backward_rules.h"
#include "src/specmine/ranking.h"
#include "src/support/strings.h"
#include "src/trace/csv_trace_reader.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Iterative generators.

TEST(IterGeneratorsTest, SingletonsAreGenerators) {
  SequenceDatabase db = MakeDb({"a b a b"});
  IterGeneratorMinerOptions options;
  options.min_support = 1;
  PatternSet gens = MineIterativeGenerators(db, options);
  EXPECT_TRUE(gens.Contains(P(db, "a")));
  EXPECT_TRUE(gens.Contains(P(db, "b")));
}

TEST(IterGeneratorsTest, EqualSupportExtensionIsNotGenerator) {
  // Every a is immediately followed by b and vice versa: sup(<a, b>) ==
  // sup(<a>) == sup(<b>) == 2, so <a, b> is not a generator.
  SequenceDatabase db = MakeDb({"a b x a b"});
  IterGeneratorMinerOptions options;
  options.min_support = 1;
  PatternSet gens = MineIterativeGenerators(db, options);
  EXPECT_TRUE(gens.Contains(P(db, "a")));
  EXPECT_FALSE(gens.Contains(P(db, "a b")));
  EXPECT_FALSE(IsIterativeGenerator(db, P(db, "a b"), 2));
}

TEST(IterGeneratorsTest, LowerSupportExtensionIsGenerator) {
  // sup(<a>) = 3, sup(<b>) = 3 (extra trace), sup(<a, b>) = 2: both
  // one-event deletions have strictly larger support, so the pair carries
  // information of its own.
  SequenceDatabase db = MakeDb({"a b a b a", "b"});
  IterGeneratorMinerOptions options;
  options.min_support = 1;
  PatternSet gens = MineIterativeGenerators(db, options);
  EXPECT_TRUE(gens.Contains(P(db, "a b")));
}

TEST(IterGeneratorsTest, GeneratorsAndClosedPartitionEvidence) {
  // Every frequent pattern's support must be witnessed by some generator
  // with the same support that is a subsequence of it (the equivalence-
  // class reading: generators are the minimal members).
  SequenceDatabase db = MakeDb({"a b c a b", "b a c b a", "c a b c"});
  const uint64_t min_sup = 2;
  IterGeneratorMinerOptions options;
  options.min_support = min_sup;
  PatternSet gens = MineIterativeGenerators(db, options);
  // Spot-check on all frequent patterns up to length 3.
  for (const auto& item : gens.items()) {
    EXPECT_EQ(item.support, CountInstances(item.pattern, db));
  }
  IterMinerOptions full_options;
  full_options.min_support = min_sup;
  full_options.max_length = 3;
  PatternSet full = MineFrequentIterative(db, full_options);
  for (const auto& fp : full.items()) {
    bool witnessed = false;
    for (const auto& g : gens.items()) {
      if (g.support == fp.support && g.pattern.IsSubsequenceOf(fp.pattern)) {
        witnessed = true;
        break;
      }
    }
    EXPECT_TRUE(witnessed) << fp.pattern.ToString();
  }
}

// ---------------------------------------------------------------------------
// Backward rules.

TEST(BackwardRulesTest, UnlockRequiresPriorLock) {
  SequenceDatabase db = MakeDb({
      "lock use unlock",
      "x lock unlock lock y unlock",
      "lock unlock",
  });
  RuleMinerOptions options;
  options.min_s_support = 3;
  options.min_confidence = 1.0;
  options.non_redundant = false;
  RuleSet rules = MineBackwardRules(db, options);
  const Rule* r = rules.Find(P(db, "unlock"), P(db, "lock"));
  ASSERT_NE(r, nullptr) << rules.ToString(db.dictionary());
  EXPECT_DOUBLE_EQ(r->confidence(), 1.0);
  EXPECT_EQ(r->s_support, 3u);
  // i-support = occurrences of <lock, unlock>: 1 + 2 + 1.
  EXPECT_EQ(r->i_support, 4u);
}

TEST(BackwardRulesTest, ConfidenceCountsUnprecededPoints) {
  // One unlock without a prior lock.
  SequenceDatabase db = MakeDb({"unlock x lock unlock", "lock unlock"});
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 0.5;
  options.non_redundant = false;
  RuleSet rules = MineBackwardRules(db, options);
  const Rule* r = rules.Find(P(db, "unlock"), P(db, "lock"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->premise_points, 3u);
  EXPECT_EQ(r->satisfied_points, 2u);
}

TEST(BackwardRulesTest, StrictlyBeforeThePoint) {
  // The premise event itself cannot witness the past consequent.
  SequenceDatabase db = MakeDb({"a"});
  RuleMinerOptions options;
  options.min_s_support = 1;
  options.min_confidence = 0.1;
  options.non_redundant = false;
  RuleSet rules = MineBackwardRules(db, options);
  EXPECT_EQ(rules.Find(P(db, "a"), P(db, "a")), nullptr);
}

TEST(BackwardRulesTest, MultiEventPastConsequentKeepsOrder) {
  // Whenever commit occurs, <begin, validate> happened before, in order.
  SequenceDatabase db = MakeDb({
      "begin validate commit",
      "begin x validate y commit",
  });
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 1.0;
  options.non_redundant = false;
  RuleSet rules = MineBackwardRules(db, options);
  EXPECT_NE(rules.Find(P(db, "commit"), P(db, "begin validate")), nullptr);
  // The reversed order never occurs as a subsequence of the prefixes.
  EXPECT_EQ(rules.Find(P(db, "commit"), P(db, "validate begin")), nullptr);
}

TEST(BackwardRulesTest, NonRedundantSubsetWithEqualStats) {
  SequenceDatabase db = MakeDb({
      "init run stop run stop",
      "init run stop",
      "init x run y stop",
  });
  RuleMinerOptions full;
  full.min_s_support = 2;
  full.min_confidence = 0.8;
  full.non_redundant = false;
  RuleSet full_rules = MineBackwardRules(db, full);
  RuleMinerOptions nr = full;
  nr.non_redundant = true;
  RuleSet nr_rules = MineBackwardRules(db, nr);
  EXPECT_LE(nr_rules.size(), full_rules.size());
  EXPECT_GT(nr_rules.size(), 0u);
  for (const Rule& r : nr_rules.rules()) {
    const Rule* f = full_rules.Find(r.premise, r.consequent);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(*f, r);
  }
}

TEST(BackwardRulesTest, ToStringMentionsPreviously) {
  SequenceDatabase db = MakeDb({"lock unlock"});
  Rule r;
  r.premise = P(db, "unlock");
  r.consequent = P(db, "lock");
  r.s_support = 1;
  r.premise_points = 1;
  r.satisfied_points = 1;
  std::string s = BackwardRuleToString(r, db.dictionary());
  EXPECT_NE(s.find("previously"), std::string::npos);
  EXPECT_NE(s.find("<unlock>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Ranking.

TEST(RankingTest, PatternsScoreBySupportTimesLength) {
  PatternSet set;
  set.Add(Pattern{1}, 100);          // Score 0 (singleton).
  set.Add(Pattern{1, 2}, 10);        // Score 10.
  set.Add(Pattern{1, 2, 3}, 8);      // Score 16.
  auto ranked = RankPatterns(set);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].item.pattern, (Pattern{1, 2, 3}));
  EXPECT_EQ(ranked[1].item.pattern, (Pattern{1, 2}));
  EXPECT_EQ(ranked[2].item.pattern, Pattern{1});
  EXPECT_DOUBLE_EQ(ranked[0].score, 16.0);
}

TEST(RankingTest, BaselineCountsRandomPositions) {
  // <b> embeds after positions 0 and 1 of "a b b" (suffixes "b b", "b"),
  // not after 2; plus trace "c": 2 of 4 positions.
  SequenceDatabase db = MakeDb({"a b b", "c"});
  EXPECT_DOUBLE_EQ(ConsequentBaseline(P(db, "b"), db), 0.5);
}

TEST(RankingTest, UbiquitousConsequentsRankLow) {
  // noise fires after everything; <shutdown> only after <init>.
  SequenceDatabase db = MakeDb({
      "init noise shutdown noise",
      "noise init noise shutdown",
      "noise noise",
  });
  RuleSet rules;
  Rule specific;
  specific.premise = P(db, "init");
  specific.consequent = P(db, "shutdown");
  specific.s_support = 2;
  specific.premise_points = 2;
  specific.satisfied_points = 2;  // conf 1.0.
  rules.Add(specific);
  Rule generic;
  generic.premise = P(db, "init");
  generic.consequent = P(db, "noise");
  generic.s_support = 2;
  generic.premise_points = 2;
  generic.satisfied_points = 2;  // Also conf 1.0.
  rules.Add(generic);
  auto ranked = RankRules(rules, db);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].rule.consequent, P(db, "shutdown"));
  EXPECT_GT(ranked[0].lift, ranked[1].lift);
}

// ---------------------------------------------------------------------------
// CSV trace reader.

TEST(CsvTraceReaderTest, GroupsByKeyInFirstAppearanceOrder) {
  std::istringstream in(
      "# instrumentation log\n"
      "t1,TxManager.begin\n"
      "t2,TxManager.begin\n"
      "t1,TxManager.commit\n"
      "t2,TxManager.rollback\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);
  EXPECT_EQ(db->dictionary().Name((*db)[0][1]), "TxManager.commit");
  EXPECT_EQ(db->dictionary().Name((*db)[1][1]), "TxManager.rollback");
}

TEST(CsvTraceReaderTest, CustomColumnsDelimiterAndHeader) {
  std::istringstream in(
      "ts;method;test\n"
      "1;A.f;alpha\n"
      "2;B.g;alpha\n"
      "3;A.f;beta\n");
  CsvTraceOptions options;
  options.delimiter = ';';
  options.group_column = 2;
  options.event_column = 1;
  options.has_header = true;
  Result<SequenceDatabase> db = ReadCsvTraces(in, options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);
  EXPECT_EQ((*db)[1].size(), 1u);
}

TEST(CsvTraceReaderTest, StrictModeRejectsShortRows) {
  std::istringstream in("t1,A.f\nbroken\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kParseError);
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTraceReaderTest, LenientModeSkipsShortRows) {
  std::istringstream in("t1,A.f\nbroken\nt1,B.g\n");
  CsvTraceOptions options;
  options.strict = false;
  Result<SequenceDatabase> db = ReadCsvTraces(in, options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 1u);
  EXPECT_EQ((*db)[0].size(), 2u);
}

TEST(CsvTraceReaderTest, MissingFileIsIoError) {
  Result<SequenceDatabase> db =
      ReadCsvTraceFile("/no/such/file.csv", CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace specmine
