// Property-based tests for recurrent rule mining against a brute-force
// oracle implementing Section 5's definitions directly (independent of the
// production occurrence engine), parameterized over seeded random
// databases.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/rulemine/rule_miner.h"
#include "src/support/random.h"

namespace specmine {
namespace {

struct RandomDbParams {
  uint64_t seed;
  size_t num_seqs;
  size_t max_len;
  size_t alphabet;
};

SequenceDatabase RandomDb(const RandomDbParams& p) {
  Rng rng(p.seed);
  SequenceDatabaseBuilder db;
  for (size_t i = 0; i < p.alphabet; ++i) {
    db.mutable_dictionary()->Intern("e" + std::to_string(i));
  }
  for (size_t s = 0; s < p.num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(p.max_len);
    for (size_t k = 0; k < len; ++k) {
      seq.Append(static_cast<EventId>(rng.Uniform(p.alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

// --------------------------------------------------------------------------
// Oracle primitives (independent re-implementations).

// Subsequence embedding into seq[from..to) by direct scan.
bool OracleEmbeds(const Pattern& p, EventSpan seq, size_t from,
                  size_t to) {
  size_t k = 0;
  for (size_t i = from; i < to && k < p.size(); ++i) {
    if (seq[i] == p[k]) ++k;
  }
  return k == p.size();
}

// Definition 5.1 occurrence points.
std::vector<size_t> OraclePoints(const Pattern& p, EventSpan seq) {
  std::vector<size_t> out;
  for (size_t j = 0; j < seq.size(); ++j) {
    if (seq[j] != p[p.size() - 1]) continue;
    // Prefix S[0..j] must contain p with its last event at j: equivalent
    // to p[0..n-2] embedding into S[0..j).
    Pattern head(std::vector<EventId>(p.events().begin(),
                                      p.events().end() - 1));
    if (OracleEmbeds(head, seq, 0, j)) out.push_back(j);
  }
  return out;
}

struct OracleStats {
  uint64_t s_support = 0;
  uint64_t i_support = 0;
  uint64_t premise_points = 0;
  uint64_t satisfied_points = 0;
};

OracleStats ComputeOracleStats(const SequenceDatabase& db, const Pattern& pre,
                               const Pattern& post) {
  OracleStats st;
  Pattern concat = pre.Concat(post);
  for (EventSpan seq : db) {
    std::vector<size_t> points = OraclePoints(pre, seq);
    if (!points.empty()) ++st.s_support;
    st.premise_points += points.size();
    for (size_t j : points) {
      if (OracleEmbeds(post, seq, j + 1, seq.size())) ++st.satisfied_points;
    }
    st.i_support += OraclePoints(concat, seq).size();
  }
  return st;
}

// Enumerates every pattern over the alphabet up to max_len (complete, no
// pruning — small inputs only).
void EnumeratePatterns(size_t alphabet, size_t max_len, Pattern prefix,
                       std::vector<Pattern>* out) {
  if (prefix.size() >= max_len) return;
  for (EventId e = 0; e < alphabet; ++e) {
    Pattern p = prefix.Extend(e);
    out->push_back(p);
    EnumeratePatterns(alphabet, max_len, p, out);
  }
}

// The full significant rule set by definition.
std::map<std::pair<Pattern, Pattern>, OracleStats> OracleFullRules(
    const SequenceDatabase& db, uint64_t min_s_sup, double min_conf,
    uint64_t min_i_sup, size_t max_pre, size_t max_post) {
  std::vector<Pattern> pres, posts;
  EnumeratePatterns(db.dictionary().size(), max_pre, Pattern(), &pres);
  EnumeratePatterns(db.dictionary().size(), max_post, Pattern(), &posts);
  std::map<std::pair<Pattern, Pattern>, OracleStats> out;
  for (const Pattern& pre : pres) {
    // Premise s-support prefilter.
    OracleStats pre_only = ComputeOracleStats(db, pre, Pattern{pre[0]});
    if (pre_only.s_support < min_s_sup) continue;
    for (const Pattern& post : posts) {
      OracleStats st = ComputeOracleStats(db, pre, post);
      if (st.premise_points == 0) continue;
      double conf = static_cast<double>(st.satisfied_points) /
                    static_cast<double>(st.premise_points);
      if (st.s_support >= min_s_sup && conf >= min_conf - 1e-12 &&
          st.i_support >= min_i_sup) {
        out[{pre, post}] = st;
      }
    }
  }
  return out;
}

// --------------------------------------------------------------------------

class RuleMinePropertyTest : public ::testing::TestWithParam<RandomDbParams> {
};

TEST_P(RuleMinePropertyTest, FullMinerMatchesOracle) {
  SequenceDatabase db = RandomDb(GetParam());
  const size_t kMaxPre = 2;
  const size_t kMaxPost = 2;
  for (double min_conf : {0.5, 0.9}) {
    for (uint64_t min_s_sup : {2u, 3u}) {
      RuleMinerOptions options;
      options.min_s_support = min_s_sup;
      options.min_confidence = min_conf;
      options.min_i_support = 1;
      options.non_redundant = false;
      options.max_premise_length = kMaxPre;
      options.max_consequent_length = kMaxPost;
      RuleSet got = MineRecurrentRules(db, options);
      auto want = OracleFullRules(db, min_s_sup, min_conf, 1, kMaxPre,
                                  kMaxPost);
      ASSERT_EQ(got.size(), want.size())
          << "min_conf=" << min_conf << " min_s_sup=" << min_s_sup;
      for (const Rule& r : got.rules()) {
        auto it = want.find({r.premise, r.consequent});
        ASSERT_NE(it, want.end()) << r.ToString(db.dictionary());
        EXPECT_EQ(r.s_support, it->second.s_support);
        EXPECT_EQ(r.i_support, it->second.i_support);
        EXPECT_EQ(r.premise_points, it->second.premise_points);
        EXPECT_EQ(r.satisfied_points, it->second.satisfied_points);
      }
    }
  }
}

TEST_P(RuleMinePropertyTest, NrRulesAreExactlyTheNonDominatedFullRules) {
  SequenceDatabase db = RandomDb(GetParam());
  // Unbounded lengths: the NR pipeline keeps the ⊑-maximal premise of
  // each equivalence class, which a premise-length cap could exclude.
  RuleMinerOptions full;
  full.min_s_support = 2;
  full.min_confidence = 0.7;
  full.non_redundant = false;
  RuleSet full_rules = MineRecurrentRules(db, full);

  RuleMinerOptions nr = full;
  nr.non_redundant = true;
  RuleSet nr_rules = MineRecurrentRules(db, nr);

  // (1) NR subset of Full with identical stats.
  for (const Rule& r : nr_rules.rules()) {
    const Rule* f = full_rules.Find(r.premise, r.consequent);
    ASSERT_NE(f, nullptr) << r.ToString(db.dictionary());
    ASSERT_EQ(*f, r);
  }
  // (2) Every Full rule is dominated by (or is) some NR rule.
  RedundancyOptions red;
  for (const Rule& r : full_rules.rules()) {
    bool covered = nr_rules.Find(r.premise, r.consequent) != nullptr;
    for (size_t i = 0; i < nr_rules.size() && !covered; ++i) {
      covered = IsRedundantTo(r, nr_rules[i], red);
    }
    ASSERT_TRUE(covered) << r.ToString(db.dictionary());
  }
  // (3) No NR rule is redundant to another NR rule.
  for (size_t i = 0; i < nr_rules.size(); ++i) {
    for (size_t j = 0; j < nr_rules.size(); ++j) {
      if (i == j) continue;
      ASSERT_FALSE(IsRedundantTo(nr_rules[i], nr_rules[j], red))
          << nr_rules[i].ToString(db.dictionary()) << " redundant to "
          << nr_rules[j].ToString(db.dictionary());
    }
  }
}

TEST_P(RuleMinePropertyTest, ConfidenceAprioriTheorem3) {
  // Extending the consequent never increases confidence.
  SequenceDatabase db = RandomDb(GetParam());
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 0.3;
  options.non_redundant = false;
  options.max_premise_length = 1;
  options.max_consequent_length = 2;
  RuleSet rules = MineRecurrentRules(db, options);
  for (const Rule& r : rules.rules()) {
    if (r.consequent.size() != 2) continue;
    Pattern shorter(std::vector<EventId>{r.consequent[0]});
    const Rule* parent = rules.Find(r.premise, shorter);
    if (parent == nullptr) continue;
    EXPECT_GE(parent->satisfied_points, r.satisfied_points);
  }
}

TEST_P(RuleMinePropertyTest, SSupportAprioriTheorem2) {
  // Extending the premise never increases s-support.
  SequenceDatabase db = RandomDb(GetParam());
  RuleMinerOptions options;
  options.min_s_support = 1;
  options.min_confidence = 0.5;
  options.non_redundant = false;
  options.max_premise_length = 2;
  options.max_consequent_length = 1;
  RuleSet rules = MineRecurrentRules(db, options);
  for (const Rule& r : rules.rules()) {
    if (r.premise.size() != 2) continue;
    Pattern shorter(std::vector<EventId>{r.premise[0]});
    const Rule* parent = rules.Find(shorter, r.consequent);
    if (parent == nullptr) continue;
    EXPECT_GE(parent->s_support, r.s_support);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, RuleMinePropertyTest,
    ::testing::Values(RandomDbParams{31, 4, 6, 2},
                      RandomDbParams{32, 4, 6, 3},
                      RandomDbParams{33, 5, 7, 3},
                      RandomDbParams{34, 5, 5, 4},
                      RandomDbParams{35, 6, 8, 3},
                      RandomDbParams{36, 3, 9, 2},
                      RandomDbParams{37, 6, 6, 4},
                      RandomDbParams{38, 8, 5, 3}),
    [](const ::testing::TestParamInfo<RandomDbParams>& info) {
      const RandomDbParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "n" +
             std::to_string(p.num_seqs) + "len" + std::to_string(p.max_len) +
             "a" + std::to_string(p.alphabet);
    });

}  // namespace
}  // namespace specmine
