// Unit tests for src/ltl: AST, Table-2 translation, finite-trace checker,
// parser round trips, and the checker-vs-miner confidence cross-check.

#include <gtest/gtest.h>

#include "src/ltl/checker.h"
#include "src/ltl/parser.h"
#include "src/ltl/translate.h"
#include "src/rulemine/rule_miner.h"
#include "src/support/strings.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

LtlPtr Atom(const char* s) { return LtlFormula::Atom(s); }

// ---------------------------------------------------------------------------
// AST + printing.

TEST(LtlFormulaTest, ToStringRendersOperators) {
  LtlPtr f = LtlFormula::Globally(LtlFormula::Implies(
      Atom("lock"),
      LtlFormula::Next(LtlFormula::Finally(Atom("unlock")))));
  EXPECT_EQ(f->ToString(), "G(lock -> XF(unlock))");
}

TEST(LtlFormulaTest, JuxtaposedUnaryChains) {
  LtlPtr f = LtlFormula::Next(
      LtlFormula::Globally(LtlFormula::Finally(Atom("a"))));
  EXPECT_EQ(f->ToString(), "XGF(a)");
}

TEST(LtlFormulaTest, StructuralEquality) {
  LtlPtr a = LtlFormula::And(Atom("x"), Atom("y"));
  LtlPtr b = LtlFormula::And(Atom("x"), Atom("y"));
  LtlPtr c = LtlFormula::And(Atom("y"), Atom("x"));
  EXPECT_TRUE(LtlFormula::Equal(a, b));
  EXPECT_FALSE(LtlFormula::Equal(a, c));
  EXPECT_FALSE(LtlFormula::Equal(a, Atom("x")));
}

// ---------------------------------------------------------------------------
// Table 2 translations.

TEST(TranslateTest, Table2Row1) {
  // a -> b  |  G(a -> XF(b))
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  LtlPtr f = RuleToLtl(Pattern{0}, Pattern{1}, dict);
  EXPECT_EQ(f->ToString(), "G(a -> XF(b))");
  EXPECT_TRUE(InMinableFragment(f));
}

TEST(TranslateTest, Table2Row2) {
  // <a, b> -> c  |  G(a -> XG(b -> XF(c)))
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("c");
  LtlPtr f = RuleToLtl(Pattern{0, 1}, Pattern{2}, dict);
  EXPECT_EQ(f->ToString(), "G(a -> WXG(b -> XF(c)))");
  EXPECT_TRUE(InMinableFragment(f));
}

TEST(TranslateTest, Table2Row3) {
  // a -> <b, c>  |  G(a -> XF(b && XF(c)))
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("c");
  LtlPtr f = RuleToLtl(Pattern{0}, Pattern{1, 2}, dict);
  EXPECT_EQ(f->ToString(), "G(a -> XF(b && XF(c)))");
  EXPECT_TRUE(InMinableFragment(f));
}

TEST(TranslateTest, Table2Row4) {
  // <a, b> -> <c, d>  |  G(a -> XG(b -> XF(c && XF(d))))
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("c");
  dict.Intern("d");
  LtlPtr f = RuleToLtl(Pattern{0, 1}, Pattern{2, 3}, dict);
  EXPECT_EQ(f->ToString(), "G(a -> WXG(b -> XF(c && XF(d))))");
  EXPECT_TRUE(InMinableFragment(f));
}

TEST(TranslateTest, FragmentRecognizerRejectsOtherShapes) {
  EXPECT_FALSE(InMinableFragment(Atom("a")));
  EXPECT_FALSE(InMinableFragment(LtlFormula::Globally(Atom("a"))));
  EXPECT_FALSE(InMinableFragment(
      LtlFormula::Finally(LtlFormula::Implies(Atom("a"), Atom("b")))));
}

// ---------------------------------------------------------------------------
// Finite-trace checker (Table 1 semantics).

TEST(CheckerTest, AtomAndBooleans) {
  std::vector<std::string> trace{"a", "b"};
  EXPECT_TRUE(EvaluateLtl(Atom("a"), trace, 0));
  EXPECT_FALSE(EvaluateLtl(Atom("b"), trace, 0));
  EXPECT_TRUE(EvaluateLtl(LtlFormula::And(Atom("a"), Atom("a")), trace, 0));
  EXPECT_FALSE(EvaluateLtl(LtlFormula::And(Atom("a"), Atom("b")), trace, 0));
  EXPECT_TRUE(
      EvaluateLtl(LtlFormula::Implies(Atom("b"), Atom("zzz")), trace, 0));
}

TEST(CheckerTest, FinallyEventually) {
  std::vector<std::string> trace{"x", "y", "unlock"};
  EXPECT_TRUE(EvaluateLtl(LtlFormula::Finally(Atom("unlock")), trace, 0));
  EXPECT_TRUE(EvaluateLtl(LtlFormula::Finally(Atom("unlock")), trace, 2));
  EXPECT_FALSE(EvaluateLtl(LtlFormula::Finally(Atom("lock")), trace, 0));
}

TEST(CheckerTest, NextIsStrong) {
  std::vector<std::string> trace{"a", "b"};
  EXPECT_TRUE(EvaluateLtl(LtlFormula::Next(Atom("b")), trace, 0));
  EXPECT_FALSE(EvaluateLtl(LtlFormula::Next(Atom("b")), trace, 1));
  // XF at the last position: no successor.
  EXPECT_FALSE(EvaluateLtl(
      LtlFormula::Next(LtlFormula::Finally(Atom("b"))), trace, 1));
}

TEST(CheckerTest, WeakNextVacuousAtTraceEnd) {
  std::vector<std::string> trace{"a", "b"};
  EXPECT_TRUE(EvaluateLtl(LtlFormula::WeakNext(Atom("b")), trace, 0));
  EXPECT_FALSE(EvaluateLtl(LtlFormula::WeakNext(Atom("a")), trace, 0));
  // No successor: weak next is vacuously true where strong next fails.
  EXPECT_TRUE(EvaluateLtl(LtlFormula::WeakNext(Atom("zzz")), trace, 1));
  EXPECT_FALSE(EvaluateLtl(LtlFormula::Next(Atom("zzz")), trace, 1));
}

TEST(CheckerTest, MultiEventPremiseVacuousAtTraceEnd) {
  // Rule <a, b> -> <c> on a trace whose final event is a: no temporal
  // point exists, so the formula must hold (this is what WX buys on
  // finite traces).
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  dict.Intern("c");
  LtlPtr f = RuleToLtl(Pattern{0, 1}, Pattern{2}, dict);
  EXPECT_TRUE(EvaluateLtl(f, {"x", "a"}, 0));
  EXPECT_TRUE(EvaluateLtl(f, {"a"}, 0));
  EXPECT_FALSE(EvaluateLtl(f, {"a", "b"}, 0));  // Point at b, no c after.
  EXPECT_TRUE(EvaluateLtl(f, {"a", "b", "c"}, 0));
}

TEST(CheckerTest, GloballyVacuousPastEnd) {
  std::vector<std::string> trace{"a"};
  EXPECT_TRUE(EvaluateLtl(LtlFormula::Globally(Atom("a")), trace, 0));
  EXPECT_TRUE(EvaluateLtl(LtlFormula::Globally(Atom("zzz")), trace, 1));
}

TEST(CheckerTest, Table1LockUnlockExamples) {
  // G(lock -> XF(unlock)).
  EventDictionary dict;
  LtlPtr g = LtlFormula::Globally(LtlFormula::Implies(
      Atom("lock"), LtlFormula::Next(LtlFormula::Finally(Atom("unlock")))));
  EXPECT_TRUE(EvaluateLtl(g, {"lock", "use", "unlock"}, 0));
  EXPECT_TRUE(EvaluateLtl(
      g, {"lock", "unlock", "lock", "unlock"}, 0));
  EXPECT_FALSE(EvaluateLtl(g, {"lock", "use"}, 0));
  // Second lock unmatched.
  EXPECT_FALSE(EvaluateLtl(g, {"lock", "unlock", "lock"}, 0));
  // Vacuously true without lock.
  EXPECT_TRUE(EvaluateLtl(g, {"use", "use"}, 0));
}

TEST(CheckerTest, XNeededForRepeatedConsequentEvents) {
  // a -> <b, b> requires two *different* b occurrences.
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  LtlPtr f = RuleToLtl(Pattern{0}, Pattern{1, 1}, dict);
  EXPECT_EQ(f->ToString(), "G(a -> XF(b && XF(b)))");
  EXPECT_FALSE(EvaluateLtl(f, {"a", "b"}, 0));
  EXPECT_TRUE(EvaluateLtl(f, {"a", "b", "b"}, 0));
}

TEST(CheckerTest, DatabaseOverloadsAndCounting) {
  SequenceDatabase db = MakeDb({"a b", "a x", "y"});
  const EventDictionary& dict = db.dictionary();
  LtlPtr f = RuleToLtl(Pattern{dict.Lookup("a")}, Pattern{dict.Lookup("b")},
                       dict);
  EXPECT_TRUE(EvaluateLtl(f, db, 0));
  EXPECT_FALSE(EvaluateLtl(f, db, 1));
  EXPECT_TRUE(EvaluateLtl(f, db, 2));  // Vacuous.
  EXPECT_EQ(CountHolding(f, db), 2u);
  EXPECT_FALSE(HoldsOnAll(f, db));
}

// ---------------------------------------------------------------------------
// Parser.

TEST(ParserTest, RoundTripsTable2Forms) {
  for (const char* text : {
           "G(a -> XF(b))",
           "G(a -> XG(b -> XF(c)))",
           "G(a -> WXG(b -> XF(c)))",
           "G(a -> XF(b && XF(c)))",
           "G(a -> WXG(b -> XF(c && XF(d))))",
           "XGF(a)",
           "WXF(a)",
           "a && b && c",
           "G(TxManager.begin -> XF(TxManager.commit))",
       }) {
    Result<LtlPtr> parsed = ParseLtl(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
  }
}

TEST(ParserTest, ParsesRightAssociativeImplication) {
  Result<LtlPtr> parsed = ParseLtl("a -> b -> c");
  ASSERT_TRUE(parsed.ok());
  // a -> (b -> c).
  EXPECT_EQ((*parsed)->op(), LtlOp::kImplies);
  EXPECT_EQ((*parsed)->left()->op(), LtlOp::kAtom);
  EXPECT_EQ((*parsed)->right()->op(), LtlOp::kImplies);
}

TEST(ParserTest, SingleLettersAreAtomsUnlessApplied) {
  Result<LtlPtr> f = ParseLtl("G");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->op(), LtlOp::kAtom);
  EXPECT_EQ((*f)->name(), "G");
  Result<LtlPtr> g = ParseLtl("G(G)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->op(), LtlOp::kGlobally);
  EXPECT_EQ((*g)->left()->name(), "G");
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseLtl("").ok());
  EXPECT_FALSE(ParseLtl("G(a -> ").ok());
  EXPECT_FALSE(ParseLtl("(a && )").ok());
  EXPECT_FALSE(ParseLtl("a b").ok());
  EXPECT_FALSE(ParseLtl("-> a").ok());
}

TEST(ParserTest, ParseThenTranslateAgree) {
  EventDictionary dict;
  dict.Intern("open");
  dict.Intern("read");
  dict.Intern("close");
  LtlPtr built = RuleToLtl(Pattern{0}, Pattern{1, 2}, dict);
  Result<LtlPtr> parsed = ParseLtl(built->ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(LtlFormula::Equal(built, *parsed));
}

// ---------------------------------------------------------------------------
// Cross-validation: mined confidence 1.0 <=> LTL holds everywhere.

TEST(CrossCheckTest, Confidence1RulesHoldAsLtl) {
  SequenceDatabase db = MakeDb({
      "lock use unlock lock unlock",
      "x lock unlock",
      "open read close open close",
      "lock unlock open close",
  });
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 0.5;
  options.non_redundant = false;
  options.max_premise_length = 2;
  options.max_consequent_length = 2;
  RuleSet rules = MineRecurrentRules(db, options);
  ASSERT_GT(rules.size(), 0u);
  size_t full_conf = 0;
  for (const Rule& r : rules.rules()) {
    LtlPtr f = RuleToLtl(r, db.dictionary());
    bool holds = HoldsOnAll(f, db);
    if (r.confidence() >= 1.0) {
      ++full_conf;
      EXPECT_TRUE(holds) << r.ToString(db.dictionary()) << " | "
                         << f->ToString();
    } else {
      EXPECT_FALSE(holds) << r.ToString(db.dictionary()) << " | "
                          << f->ToString();
    }
  }
  EXPECT_GT(full_conf, 0u);
}

}  // namespace
}  // namespace specmine
