// Unit tests for src/rulemine: temporal points, premise/consequent miners,
// statistics, redundancy, and the end-to-end rule miner on hand-computed
// examples.

#include <gtest/gtest.h>

#include "src/rulemine/consequent_miner.h"
#include "src/rulemine/premise_miner.h"
#include "src/rulemine/redundancy.h"
#include "src/rulemine/rule_miner.h"
#include "src/rulemine/temporal_points.h"
#include "src/support/strings.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Temporal points.

TEST(TemporalPointsTest, MatchesDefinition51) {
  SequenceDatabase db = MakeDb({"a b a b", "b a", "x"});
  TemporalPointSet pts = ComputeTemporalPoints(P(db, "a b"), db);
  ASSERT_EQ(pts.per_seq.size(), 3u);
  EXPECT_EQ(pts.per_seq[0], (std::vector<Pos>{1, 3}));
  EXPECT_TRUE(pts.per_seq[1].empty());  // No a before the b.
  EXPECT_TRUE(pts.per_seq[2].empty());
  EXPECT_EQ(pts.TotalPoints(), 2u);
  EXPECT_EQ(pts.SupportingSequences(), 1u);
}

TEST(TemporalPointsTest, SingleEventPremise) {
  SequenceDatabase db = MakeDb({"lock x lock y", "z lock"});
  TemporalPointSet pts = ComputeTemporalPoints(P(db, "lock"), db);
  EXPECT_EQ(pts.per_seq[0], (std::vector<Pos>{0, 2}));
  EXPECT_EQ(pts.per_seq[1], (std::vector<Pos>{1}));
  EXPECT_EQ(pts.TotalPoints(), 3u);
  EXPECT_EQ(pts.SupportingSequences(), 2u);
}

// ---------------------------------------------------------------------------
// Premise miner.

TEST(PremiseMinerTest, EnumeratesFrequentPremisesWithPoints) {
  SequenceDatabase db = MakeDb({"a b", "a c", "a d"});
  PremiseMinerOptions options;
  options.min_s_support = 3;
  options.maximality_pruning = false;
  std::vector<Pattern> premises;
  ScanPremises(db, options,
               [&](const Pattern& p, const TemporalPointSet& pts) {
                 premises.push_back(p);
                 EXPECT_EQ(pts.SupportingSequences(), 3u);
                 return true;
               });
  ASSERT_EQ(premises.size(), 1u);
  EXPECT_EQ(premises[0], P(db, "a"));
}

TEST(PremiseMinerTest, MaximalityPruningDropsEquivalentShorterPremises) {
  // In every trace, b occurs only after a, so occ(<a, b>) == occ(<b>).
  // Under Definition 5.2 the larger concatenation dominates at equal
  // statistics, so the shorter premise <b> is pruned in favour of the
  // point-equivalent <a, b>.
  SequenceDatabase db = MakeDb({"a b c", "a b d"});
  PremiseMinerOptions options;
  options.min_s_support = 2;
  options.maximality_pruning = true;
  std::vector<Pattern> premises;
  ScanPremises(db, options,
               [&](const Pattern& p, const TemporalPointSet&) {
                 premises.push_back(p);
                 return true;
               });
  bool has_ab = false;
  bool has_b = false;
  for (const Pattern& p : premises) {
    if (p == P(db, "a b")) has_ab = true;
    if (p == P(db, "b")) has_b = true;
  }
  EXPECT_TRUE(has_ab);
  EXPECT_FALSE(has_b);
}

TEST(PremiseMinerTest, NonEquivalentPremisesKept) {
  // occ(<a, b>) != occ(<b>): trace 1 has a b without preceding a.
  SequenceDatabase db = MakeDb({"a b", "b x a b"});
  PremiseMinerOptions options;
  options.min_s_support = 2;
  options.maximality_pruning = true;
  std::vector<Pattern> premises;
  ScanPremises(db, options,
               [&](const Pattern& p, const TemporalPointSet&) {
                 premises.push_back(p);
                 return true;
               });
  bool has_ab = false;
  bool has_b = false;
  for (const Pattern& p : premises) {
    if (p == P(db, "a b")) has_ab = true;
    if (p == P(db, "b")) has_b = true;
  }
  EXPECT_TRUE(has_ab);
  EXPECT_TRUE(has_b);
}

// ---------------------------------------------------------------------------
// Consequent miner.

TEST(ConfidenceThresholdTest, RoundsUpAndNeverBelowOne) {
  EXPECT_EQ(ConfidenceSupportThreshold(0.5, 10), 5u);
  EXPECT_EQ(ConfidenceSupportThreshold(0.5, 9), 5u);   // ceil(4.5).
  EXPECT_EQ(ConfidenceSupportThreshold(0.9, 10), 9u);
  EXPECT_EQ(ConfidenceSupportThreshold(1.0, 7), 7u);
  EXPECT_EQ(ConfidenceSupportThreshold(0.0, 100), 1u);
  EXPECT_EQ(ConfidenceSupportThreshold(0.3, 0), 1u);
  // Float-exact boundary: 0.2 * 5 = 1.
  EXPECT_EQ(ConfidenceSupportThreshold(0.2, 5), 1u);
}

TEST(ConsequentMinerTest, MinesSuffixPatternsAboveConfidence) {
  // Premise <a> has points after which "b c" always follows; "d" follows
  // half the time.
  SequenceDatabase db = MakeDb({"a b c d", "a b x c"});
  TemporalPointSet pts = ComputeTemporalPoints(P(db, "a"), db);
  ASSERT_EQ(pts.TotalPoints(), 2u);
  ConsequentMinerOptions options;
  options.min_confidence = 1.0;
  options.closed_pruning = false;
  PatternSet posts = MineConsequents(db, pts, options);
  EXPECT_EQ(posts.SupportOf(P(db, "b c")), 2u);
  EXPECT_EQ(posts.SupportOf(P(db, "b")), 2u);
  EXPECT_FALSE(posts.Contains(P(db, "d")));  // Only 1 of 2 points.
  EXPECT_FALSE(posts.Contains(P(db, "a")));  // a does not recur after.
}

TEST(ConsequentMinerTest, ConsequentStrictlyAfterPoint) {
  // The premise event itself must not satisfy the consequent.
  SequenceDatabase db = MakeDb({"a b"});
  TemporalPointSet pts = ComputeTemporalPoints(P(db, "a"), db);
  ConsequentMinerOptions options;
  options.min_confidence = 1.0;
  options.closed_pruning = false;
  PatternSet posts = MineConsequents(db, pts, options);
  EXPECT_TRUE(posts.Contains(P(db, "b")));
  EXPECT_FALSE(posts.Contains(P(db, "a")));
}

TEST(ConsequentMinerTest, ClosedPruningDropsAbsorbedPosts) {
  SequenceDatabase db = MakeDb({"a b c", "a b c"});
  TemporalPointSet pts = ComputeTemporalPoints(P(db, "a"), db);
  ConsequentMinerOptions options;
  options.min_confidence = 1.0;
  options.closed_pruning = true;
  PatternSet posts = MineConsequents(db, pts, options);
  // <b> and <c> are absorbed by <b, c>.
  ASSERT_EQ(posts.size(), 1u);
  EXPECT_EQ(posts[0].pattern, P(db, "b c"));
}

// ---------------------------------------------------------------------------
// Rule statistics and redundancy.

TEST(RuleTest, ConfidenceAndConcatenation) {
  Rule r;
  r.premise = Pattern{0};
  r.consequent = Pattern{1};
  r.premise_points = 4;
  r.satisfied_points = 3;
  EXPECT_DOUBLE_EQ(r.confidence(), 0.75);
  EXPECT_EQ(r.Concatenation(), (Pattern{0, 1}));
  Rule zero;
  EXPECT_DOUBLE_EQ(zero.confidence(), 0.0);
}

TEST(RuleTest, SameConfidenceAsUsesExactArithmetic) {
  Rule a, b;
  a.premise_points = 3;
  a.satisfied_points = 1;
  b.premise_points = 6;
  b.satisfied_points = 2;
  EXPECT_TRUE(a.SameConfidenceAs(b));  // 1/3 == 2/6.
  b.satisfied_points = 3;
  EXPECT_FALSE(a.SameConfidenceAs(b));
}

Rule MakeRule(std::vector<EventId> pre, std::vector<EventId> post,
              uint64_t s_sup, uint64_t i_sup, uint64_t points,
              uint64_t satisfied) {
  Rule r;
  r.premise = Pattern(std::move(pre));
  r.consequent = Pattern(std::move(post));
  r.s_support = s_sup;
  r.i_support = i_sup;
  r.premise_points = points;
  r.satisfied_points = satisfied;
  return r;
}

TEST(RedundancyTest, ProperSubsequenceWithEqualStatsIsRedundant) {
  Rule rx = MakeRule({1}, {2}, 5, 7, 10, 9);
  Rule ry = MakeRule({1}, {2, 3}, 5, 7, 10, 9);
  RedundancyOptions options;
  EXPECT_TRUE(IsRedundantTo(rx, ry, options));
  EXPECT_FALSE(IsRedundantTo(ry, rx, options));
}

TEST(RedundancyTest, DifferentStatsNotRedundant) {
  RedundancyOptions options;
  Rule rx = MakeRule({1}, {2}, 5, 7, 10, 9);
  Rule ry = MakeRule({1}, {2, 3}, 4, 7, 10, 9);  // s-sup differs.
  EXPECT_FALSE(IsRedundantTo(rx, ry, options));
  Rule rz = MakeRule({1}, {2, 3}, 5, 7, 10, 8);  // Confidence differs.
  EXPECT_FALSE(IsRedundantTo(rx, rz, options));
}

TEST(RedundancyTest, EqualConcatenationTieBreaksOnPremiseLength) {
  // <a> -> <b, c> wins over <a, b> -> <c>.
  Rule shorter = MakeRule({1}, {2, 3}, 5, 7, 10, 9);
  Rule longer = MakeRule({1, 2}, {3}, 5, 7, 10, 9);
  RedundancyOptions options;
  EXPECT_TRUE(IsRedundantTo(longer, shorter, options));
  EXPECT_FALSE(IsRedundantTo(shorter, longer, options));
}

TEST(RedundancyTest, IsupportFlagControlsStrictness) {
  Rule rx = MakeRule({1}, {2}, 5, 7, 10, 9);
  Rule ry = MakeRule({1}, {2, 3}, 5, 99, 10, 9);
  RedundancyOptions lax;
  EXPECT_TRUE(IsRedundantTo(rx, ry, lax));
  RedundancyOptions strict;
  strict.require_equal_i_support = true;
  EXPECT_FALSE(IsRedundantTo(rx, ry, strict));
}

TEST(RedundancyTest, RemoveRedundantKeepsMaximalRules) {
  RuleSet rules;
  rules.Add(MakeRule({1}, {2}, 5, 7, 10, 9));
  rules.Add(MakeRule({1}, {2, 3}, 5, 7, 10, 9));
  rules.Add(MakeRule({4}, {5}, 2, 2, 4, 4));
  RuleSet out = RemoveRedundantRules(rules, RedundancyOptions{});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out.Find(Pattern{1}, Pattern{2, 3}), nullptr);
  EXPECT_NE(out.Find(Pattern{4}, Pattern{5}), nullptr);
  EXPECT_EQ(out.Find(Pattern{1}, Pattern{2}), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end rule mining.

TEST(RuleMinerTest, LockUnlockRule) {
  SequenceDatabase db = MakeDb({
      "lock use unlock",
      "lock unlock lock unlock",
      "x lock y unlock",
  });
  RuleMinerOptions options;
  options.min_s_support = 3;
  options.min_confidence = 1.0;
  options.non_redundant = false;
  RuleSet rules = MineRecurrentRules(db, options);
  const Rule* r = rules.Find(P(db, "lock"), P(db, "unlock"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->s_support, 3u);
  EXPECT_DOUBLE_EQ(r->confidence(), 1.0);
  // occ(<lock, unlock>): one per unlock preceded by a lock: 1 + 2 + 1.
  EXPECT_EQ(r->i_support, 4u);
}

TEST(RuleMinerTest, ConfidenceCountsUnsatisfiedPoints) {
  // Second lock in trace 0 is never released: 2 of 3 points satisfied.
  SequenceDatabase db = MakeDb({"lock unlock lock", "lock unlock"});
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 0.5;
  options.non_redundant = false;
  RuleSet rules = MineRecurrentRules(db, options);
  const Rule* r = rules.Find(P(db, "lock"), P(db, "unlock"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->premise_points, 3u);
  EXPECT_EQ(r->satisfied_points, 2u);
  EXPECT_NEAR(r->confidence(), 2.0 / 3.0, 1e-12);
}

TEST(RuleMinerTest, MinConfidenceFilters) {
  SequenceDatabase db = MakeDb({"lock unlock lock", "lock unlock"});
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 0.9;
  options.non_redundant = false;
  RuleSet rules = MineRecurrentRules(db, options);
  EXPECT_EQ(rules.Find(P(db, "lock"), P(db, "unlock")), nullptr);
}

TEST(RuleMinerTest, MinIsupportFilters) {
  SequenceDatabase db = MakeDb({"a b", "a b"});
  RuleMinerOptions options;
  options.min_s_support = 2;
  options.min_confidence = 1.0;
  options.non_redundant = false;
  options.min_i_support = 3;  // occ(<a, b>) == 2 < 3.
  RuleSet rules = MineRecurrentRules(db, options);
  EXPECT_EQ(rules.Find(P(db, "a"), P(db, "b")), nullptr);
  options.min_i_support = 2;
  rules = MineRecurrentRules(db, options);
  EXPECT_NE(rules.Find(P(db, "a"), P(db, "b")), nullptr);
}

TEST(RuleMinerTest, MultiEventRuleInitTermination) {
  // The paper's initialization-termination motif: <init1, init2> ->
  // <term1, term2>.
  SequenceDatabase db = MakeDb({
      "init1 init2 work term1 term2",
      "init1 x init2 work work term1 y term2",
      "init1 init2 term1 term2 init1 init2 term1 term2",
  });
  // Full mode surfaces the multi-event rule directly.
  RuleMinerOptions full;
  full.min_s_support = 3;
  full.min_confidence = 1.0;
  full.non_redundant = false;
  RuleSet full_rules = MineRecurrentRules(db, full);
  const Rule* r = full_rules.Find(P(db, "init1 init2"), P(db, "term1 term2"));
  ASSERT_NE(r, nullptr) << full_rules.ToString(db.dictionary());
  EXPECT_EQ(r->s_support, 3u);
  EXPECT_DOUBLE_EQ(r->confidence(), 1.0);
  // The NR set applies the Definition-5.2 tie-break: for equal
  // concatenations the rule with the *shorter premise* (longer consequent)
  // is retained, so <init1> -> <init2, term1, term2> represents the
  // constraint.
  RuleMinerOptions nr = full;
  nr.non_redundant = true;
  RuleSet nr_rules = MineRecurrentRules(db, nr);
  const Rule* kept =
      nr_rules.Find(P(db, "init1"), P(db, "init2 term1 term2"));
  ASSERT_NE(kept, nullptr) << nr_rules.ToString(db.dictionary());
  EXPECT_DOUBLE_EQ(kept->confidence(), 1.0);
  EXPECT_EQ(nr_rules.Find(P(db, "init1 init2"), P(db, "term1 term2")),
            nullptr);
}

TEST(RuleMinerTest, NonRedundantIsSubsetOfFull) {
  SequenceDatabase db = MakeDb({
      "a b c d",
      "a c b d",
      "a b d c",
  });
  RuleMinerOptions full;
  full.min_s_support = 2;
  full.min_confidence = 0.6;
  full.non_redundant = false;
  RuleSet full_rules = MineRecurrentRules(db, full);
  RuleMinerOptions nr = full;
  nr.non_redundant = true;
  RuleSet nr_rules = MineRecurrentRules(db, nr);
  EXPECT_LE(nr_rules.size(), full_rules.size());
  for (const Rule& r : nr_rules.rules()) {
    const Rule* in_full = full_rules.Find(r.premise, r.consequent);
    ASSERT_NE(in_full, nullptr) << r.ToString(db.dictionary());
    EXPECT_EQ(in_full->s_support, r.s_support);
    EXPECT_EQ(in_full->i_support, r.i_support);
    EXPECT_EQ(in_full->satisfied_points, r.satisfied_points);
    EXPECT_EQ(in_full->premise_points, r.premise_points);
  }
}

TEST(RuleMinerTest, TruncationStopsEarly) {
  SequenceDatabase db = MakeDb({"a b c d e", "a b c d e"});
  RuleMinerOptions options;
  options.min_s_support = 1;
  options.min_confidence = 0.1;
  options.non_redundant = false;
  options.max_rules = 10;
  RuleMinerStats stats;
  RuleSet rules = MineRecurrentRules(db, options, &stats);
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(rules.size(), 10u);
}

TEST(RuleSetTest, SortByQualityOrdersByConfidenceThenSupport) {
  RuleSet rules;
  rules.Add(MakeRule({1}, {2}, 3, 3, 10, 5));   // conf 0.5.
  rules.Add(MakeRule({3}, {4}, 2, 2, 10, 10));  // conf 1.0.
  rules.Add(MakeRule({5}, {6}, 9, 9, 10, 10));  // conf 1.0, higher s-sup.
  rules.SortByQuality();
  EXPECT_EQ(rules[0].premise, Pattern{5});
  EXPECT_EQ(rules[1].premise, Pattern{3});
  EXPECT_EQ(rules[2].premise, Pattern{1});
}

TEST(RuleTest, ToStringRendersStats) {
  EventDictionary dict;
  dict.Intern("lock");
  dict.Intern("unlock");
  Rule r = MakeRule({0}, {1}, 3, 4, 4, 4);
  std::string s = r.ToString(dict);
  EXPECT_NE(s.find("<lock> -> <unlock>"), std::string::npos);
  EXPECT_NE(s.find("s-sup=3"), std::string::npos);
  EXPECT_NE(s.find("i-sup=4"), std::string::npos);
  EXPECT_NE(s.find("conf=1.000"), std::string::npos);
}

}  // namespace
}  // namespace specmine
