// Tests for the .smdbset shard-set format: ShardWriter splitting and
// rotation, manifest round trips, Merge() bit-identity with the unsharded
// database, dictionary remap across disjoint/overlapping shard alphabets,
// and the reader's rejection of corrupt or inconsistent sets (missing
// shard files, wrong-version shards, broken manifests).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/trace/binary_format.h"
#include "src/trace/sequence_database.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SequenceDatabase SampleDb() {
  SequenceDatabaseBuilder builder;
  builder.AddTraceFromString("lock read write unlock lock write unlock");
  builder.AddTraceFromString("open read close lock unlock");
  builder.AddTraceFromString("lock read unlock open read read close");
  builder.AddTraceFromString("open write close open read close");
  builder.AddTraceFromString("lock unlock lock read write unlock");
  return builder.Build();
}

// Asserts that \p merged is bit-for-bit the same database as \p expected:
// same dictionary in the same id order, same spans with the same ids.
void ExpectSameDatabase(const SequenceDatabase& merged,
                        const SequenceDatabase& expected) {
  ASSERT_EQ(merged.size(), expected.size());
  ASSERT_EQ(merged.TotalEvents(), expected.TotalEvents());
  ASSERT_EQ(merged.dictionary().size(), expected.dictionary().size());
  for (size_t i = 0; i < expected.dictionary().size(); ++i) {
    EXPECT_EQ(merged.dictionary().Name(static_cast<EventId>(i)),
              expected.dictionary().Name(static_cast<EventId>(i)));
  }
  for (SeqId s = 0; s < expected.size(); ++s) {
    EXPECT_EQ(merged[s], expected[s]) << "sequence " << s;
  }
}

TEST(SmdbSetPathTest, SuffixDetection) {
  EXPECT_TRUE(IsSmdbSetPath("corpus.smdbset"));
  EXPECT_TRUE(IsSmdbSetPath("/a/b/c.smdbset"));
  EXPECT_FALSE(IsSmdbSetPath("corpus.smdb"));
  EXPECT_FALSE(IsSmdbSetPath("smdbset"));
  EXPECT_FALSE(IsSmdbSetPath(""));
}

TEST(ShardWriterTest, SplitsIntoSizeBoundedShardsThatMergeBack) {
  SequenceDatabase db = SampleDb();
  const std::string manifest = TempPath("split.smdbset");
  ShardWriterOptions options;
  options.shard_bytes = 256;  // Tiny bound: force several shards.
  ASSERT_TRUE(WriteShardedDatabase(db, manifest, options).ok());

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_GT(set->num_shards(), 1u);
  EXPECT_EQ(set->TotalSequences(), db.size());
  EXPECT_EQ(set->TotalEvents(), db.TotalEvents());

  // Every shard file respects the bound (no sample trace exceeds it on
  // its own) and is independently a valid .smdb database.
  for (size_t i = 0; i < set->num_shards(); ++i) {
    const std::vector<char> bytes = ReadAll(set->shard_path(i));
    EXPECT_LE(bytes.size(), options.shard_bytes) << set->shard_path(i);
    Result<MappedDatabase> alone = MappedDatabase::Open(set->shard_path(i));
    ASSERT_TRUE(alone.ok()) << alone.status().ToString();
    EXPECT_EQ(alone->db().size(), set->shard(i).size());
  }

  ExpectSameDatabase(set->Merge(), db);
}

TEST(ShardWriterTest, SingleShardEqualsPlainSmdb) {
  SequenceDatabase db = SampleDb();
  const std::string manifest = TempPath("single.smdbset");
  ASSERT_TRUE(WriteShardedDatabase(db, manifest).ok());  // Default 64 MiB.

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->num_shards(), 1u);
  // The one shard's file is byte-identical to packing db directly: the
  // shard-local dictionary saw the same intern order as the original.
  const std::string direct = TempPath("single_direct.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, direct).ok());
  EXPECT_EQ(ReadAll(set->shard_path(0)), ReadAll(direct));
  ExpectSameDatabase(set->Merge(), db);
}

TEST(ShardWriterTest, EmptyShardSetRoundTrips) {
  const std::string manifest = TempPath("empty.smdbset");
  ShardWriter writer(manifest);
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.shards_written(), 0u);

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->num_shards(), 0u);
  EXPECT_EQ(set->TotalSequences(), 0u);
  SequenceDatabase merged = set->Merge();
  EXPECT_TRUE(merged.empty());
  EXPECT_TRUE(merged.dictionary().empty());
}

TEST(ShardWriterTest, CutShardSplitsAtExplicitBoundaries) {
  const std::string manifest = TempPath("cut.smdbset");
  ShardWriter writer(manifest);
  ASSERT_TRUE(writer.AddTraceFromString("a b a").ok());
  ASSERT_TRUE(writer.CutShard().ok());
  ASSERT_TRUE(writer.CutShard().ok());  // Empty cut: no empty shard file.
  ASSERT_TRUE(writer.AddTraceFromString("b c").ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.shards_written(), 2u);
  EXPECT_EQ(writer.sequences_written(), 2u);

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->num_shards(), 2u);
  // Shard dictionaries are compact: only the names each shard uses.
  EXPECT_EQ(set->shard(0).dictionary().size(), 2u);  // a, b.
  EXPECT_EQ(set->shard(1).dictionary().size(), 2u);  // b, c.
  EXPECT_EQ(set->dictionary().size(), 3u);           // a, b, c merged.
}

// The remap contract with overlapping alphabets: shard-local ids differ
// from merged ids, and Merge() translates them back to one consistent
// numbering (first appearance across the whole stream).
TEST(ShardedDatabaseTest, RemapHandlesOverlappingAlphabets) {
  const std::string manifest = TempPath("overlap.smdbset");
  ShardWriter writer(manifest);
  ASSERT_TRUE(writer.AddTraceFromString("x y x").ok());
  ASSERT_TRUE(writer.CutShard().ok());
  ASSERT_TRUE(writer.AddTraceFromString("z y z x").ok());
  ASSERT_TRUE(writer.Finish().ok());

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->num_shards(), 2u);
  // Shard 1 interned z first (local id 0), but merged id order is the
  // stream's first-appearance order: x=0, y=1, z=2.
  EXPECT_EQ(set->dictionary().Lookup("x"), 0u);
  EXPECT_EQ(set->dictionary().Lookup("y"), 1u);
  EXPECT_EQ(set->dictionary().Lookup("z"), 2u);
  EXPECT_EQ(set->shard(1).dictionary().Lookup("z"), 0u);
  EXPECT_EQ(set->remap(1)[0], 2u);  // local z -> merged z.

  SequenceDatabaseBuilder expected;
  expected.AddTraceFromString("x y x");
  expected.AddTraceFromString("z y z x");
  ExpectSameDatabase(set->Merge(), expected.Build());
}

TEST(ShardedDatabaseTest, RemapHandlesDisjointAlphabets) {
  const std::string manifest = TempPath("disjoint.smdbset");
  ShardWriter writer(manifest);
  ASSERT_TRUE(writer.AddTraceFromString("a b a b").ok());
  ASSERT_TRUE(writer.CutShard().ok());
  ASSERT_TRUE(writer.AddTraceFromString("c d c").ok());
  ASSERT_TRUE(writer.Finish().ok());

  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->num_shards(), 2u);
  EXPECT_EQ(set->shard(0).dictionary().size(), 2u);
  EXPECT_EQ(set->shard(1).dictionary().size(), 2u);
  EXPECT_EQ(set->dictionary().size(), 4u);
  EXPECT_EQ(set->remap(1)[0], 2u);  // local c -> merged id 2.
  EXPECT_EQ(set->remap(1)[1], 3u);  // local d -> merged id 3.

  SequenceDatabaseBuilder expected;
  expected.AddTraceFromString("a b a b");
  expected.AddTraceFromString("c d c");
  ExpectSameDatabase(set->Merge(), expected.Build());
}

TEST(ShardedDatabaseTest, EmptyTracesSurviveSharding) {
  SequenceDatabaseBuilder builder;
  builder.AddSequence({});
  builder.AddTraceFromString("a");
  builder.AddSequence({});
  SequenceDatabase db = builder.Build();
  const std::string manifest = TempPath("empties.smdbset");
  ASSERT_TRUE(WriteShardedDatabase(db, manifest).ok());
  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ExpectSameDatabase(set->Merge(), db);
}

TEST(ShardedDatabaseTest, OversizedTraceGetsItsOwnShard) {
  const std::string manifest = TempPath("oversized.smdbset");
  ShardWriterOptions options;
  options.shard_bytes = 200;
  ShardWriter writer(manifest, options);
  std::string huge;
  for (int i = 0; i < 100; ++i) huge += "ev" + std::to_string(i % 7) + " ";
  ASSERT_TRUE(writer.AddTraceFromString("a b").ok());
  ASSERT_TRUE(writer.AddTraceFromString(huge).ok());  // > 200 bytes alone.
  ASSERT_TRUE(writer.AddTraceFromString("a b").ok());
  ASSERT_TRUE(writer.Finish().ok());
  Result<ShardedDatabase> set = ShardedDatabase::Open(manifest);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->num_shards(), 3u);
  EXPECT_EQ(set->shard(1).size(), 1u);  // The oversized trace, alone.
  EXPECT_EQ(set->TotalSequences(), 3u);
}

// ---------------------------------------------------------------------------
// Corruption and inconsistency rejection.

class ShardSetCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manifest_ = TempPath("corrupt.smdbset");
    ShardWriterOptions options;
    options.shard_bytes = 256;
    ASSERT_TRUE(WriteShardedDatabase(SampleDb(), manifest_, options).ok());
    Result<ShardedDatabase> set = ShardedDatabase::Open(manifest_);
    ASSERT_TRUE(set.ok());
    ASSERT_GT(set->num_shards(), 1u);
    shard0_path_ = set->shard_path(0);
  }

  std::string manifest_;
  std::string shard0_path_;
};

TEST_F(ShardSetCorruptionTest, MissingShardFileIsIOErrorNamingTheShard) {
  ASSERT_EQ(std::remove(shard0_path_.c_str()), 0);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("shard 0"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, WrongVersionShardIsRejected) {
  std::vector<char> bytes = ReadAll(shard0_path_);
  const uint32_t bogus = 99;  // .smdb version field sits at byte 8.
  std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));
  WriteAll(shard0_path_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, ShardContentMismatchIsRejected) {
  // Replace shard 0 with a valid .smdb holding different traces: counts
  // and dictionary no longer match the manifest record.
  SequenceDatabaseBuilder builder;
  builder.AddTraceFromString("totally different events");
  ASSERT_TRUE(
      WriteBinaryDatabaseFile(builder.Build(), shard0_path_).ok());
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("shard 0"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, BadMagicIsRejected) {
  std::vector<char> bytes = ReadAll(manifest_);
  bytes[0] = 'X';
  WriteAll(manifest_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, WrongManifestVersionIsRejected) {
  std::vector<char> bytes = ReadAll(manifest_);
  const uint32_t bogus = 42;  // Manifest version field sits at byte 8.
  std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));
  WriteAll(manifest_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, TruncatedManifestIsRejected) {
  std::vector<char> bytes = ReadAll(manifest_);
  bytes.resize(bytes.size() - 8);
  WriteAll(manifest_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, InflatedShardCountIsRejected) {
  std::vector<char> bytes = ReadAll(manifest_);
  // num_shards sits at byte 16; growing it without growing the file makes
  // the size fields inconsistent.
  uint64_t num_shards = 0;
  std::memcpy(&num_shards, bytes.data() + 16, sizeof(num_shards));
  num_shards += 3;
  std::memcpy(bytes.data() + 16, &num_shards, sizeof(num_shards));
  WriteAll(manifest_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(ShardSetCorruptionTest, TinyFileIsRejected) {
  WriteAll(manifest_, std::vector<char>{'S', 'M', 'D', 'S'});
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("header"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checksums (v2) and quarantine.

TEST_F(ShardSetCorruptionTest, ManifestHeaderBitFlipFailsTheChecksum) {
  std::vector<char> bytes = ReadAll(manifest_);
  bytes[20] = static_cast<char>(bytes[20] ^ 0x04);  // Inside num_shards.
  WriteAll(manifest_, bytes);
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, ManifestPayloadBitFlipIsCaughtByFullMode) {
  std::vector<char> bytes = ReadAll(manifest_);
  // Flip one payload bit (the name blob / remap region past the header).
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  WriteAll(manifest_, bytes);
  SetOpenOptions full;
  full.integrity = IntegrityMode::kFull;
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_, full);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST_F(ShardSetCorruptionTest, QuarantinePolicySkipsTheBadShard) {
  Result<ShardedDatabase> healthy = ShardedDatabase::Open(manifest_);
  ASSERT_TRUE(healthy.ok());
  const size_t full_shards = healthy->num_shards();
  const size_t full_sequences = healthy->TotalSequences();
  const size_t shard0_sequences = healthy->shard(0).size();
  healthy = Status::IOError("released");  // Unmap before corrupting.

  WriteAll(shard0_path_, std::vector<char>{'g', 'a', 'r', 'b', 'a', 'g', 'e'});

  // kFail (default): the bad shard fails the whole open.
  Result<ShardedDatabase> strict = ShardedDatabase::Open(manifest_);
  ASSERT_FALSE(strict.ok());

  // kQuarantine: the set opens over the healthy subset; the report names
  // the excluded shard and totals rescale to the survivors.
  SetOpenOptions options;
  options.policy = ShardFailurePolicy::kQuarantine;
  Result<ShardedDatabase> degraded = ShardedDatabase::Open(manifest_, options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->num_shards(), full_shards - 1);
  EXPECT_EQ(degraded->open_report().shards_total, full_shards);
  ASSERT_EQ(degraded->open_report().quarantined.size(), 1u);
  EXPECT_EQ(degraded->open_report().quarantined[0].index, 0u);
  EXPECT_EQ(degraded->open_report().quarantined[0].path, shard0_path_);
  EXPECT_FALSE(degraded->open_report().quarantined[0].error.empty());
  EXPECT_EQ(degraded->TotalSequences(), full_sequences - shard0_sequences);
  // The merged database holds only surviving traces.
  EXPECT_EQ(degraded->Merge().size(), full_sequences - shard0_sequences);
}

TEST_F(ShardSetCorruptionTest, QuarantineCoversMissingShardFiles) {
  ASSERT_EQ(std::remove(shard0_path_.c_str()), 0);
  SetOpenOptions options;
  options.policy = ShardFailurePolicy::kQuarantine;
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->open_report().quarantined.size(), 1u);
  EXPECT_EQ(r->open_report().quarantined[0].index, 0u);
}

TEST_F(ShardSetCorruptionTest, QuarantineDoesNotExcuseManifestCorruption) {
  std::vector<char> bytes = ReadAll(manifest_);
  bytes.resize(bytes.size() - 8);  // Truncated manifest.
  WriteAll(manifest_, bytes);
  SetOpenOptions options;
  options.policy = ShardFailurePolicy::kQuarantine;
  Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_, options);
  ASSERT_FALSE(r.ok());  // The manifest itself has no quarantine.
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST_F(ShardSetCorruptionTest, ShardChecksumMismatchQuarantinesUnderFull) {
  // Flip a byte in shard 0's name-offset table (past the 96-byte header):
  // the full-integrity re-hash reports it as a section checksum mismatch.
  std::vector<char> bytes = ReadAll(shard0_path_);
  bytes[97] = static_cast<char>(bytes[97] ^ 0x20);
  WriteAll(shard0_path_, bytes);

  SetOpenOptions full_fail;
  full_fail.integrity = IntegrityMode::kFull;
  Result<ShardedDatabase> strict = ShardedDatabase::Open(manifest_, full_fail);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.status().message().find("checksum"), std::string::npos);

  SetOpenOptions full_quarantine;
  full_quarantine.integrity = IntegrityMode::kFull;
  full_quarantine.policy = ShardFailurePolicy::kQuarantine;
  Result<ShardedDatabase> degraded =
      ShardedDatabase::Open(manifest_, full_quarantine);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_EQ(degraded->open_report().quarantined.size(), 1u);
  EXPECT_NE(degraded->open_report().quarantined[0].error.find("checksum"),
            std::string::npos);
}

TEST_F(ShardSetCorruptionTest, LegacyV1ManifestStillOpens) {
  // A v1 manifest is the same layout with a zeroed pad instead of
  // checksums; patching the version field down and clearing the checksum
  // block reproduces one bit-for-bit.
  std::vector<char> bytes = ReadAll(manifest_);
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
  std::memset(bytes.data() + 80, 0, 16);  // The v2 checksum block.
  WriteAll(manifest_, bytes);
  for (IntegrityMode mode : {IntegrityMode::kOff, IntegrityMode::kHeader,
                             IntegrityMode::kFull}) {
    SetOpenOptions options;
    options.integrity = mode;
    Result<ShardedDatabase> r = ShardedDatabase::Open(manifest_, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->TotalSequences(), SampleDb().size());
  }
}

TEST(ShardSetTest, OpenMissingManifestIsIOError) {
  Result<ShardedDatabase> r =
      ShardedDatabase::Open("/nonexistent/corpus.smdbset");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ShardWriterTest, RejectsTracesAfterFinish) {
  const std::string manifest = TempPath("finished.smdbset");
  ShardWriter writer(manifest);
  ASSERT_TRUE(writer.AddTraceFromString("a b").ok());
  ASSERT_TRUE(writer.Finish().ok());
  Status again = writer.AddTraceFromString("c d");
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(writer.Finish().ok());  // Idempotent.
}

}  // namespace
}  // namespace specmine
