// Cooperative cancellation and deadlines, end to end through the Engine:
// a cancelled run fails with kCancelled/kDeadlineExceeded, whatever a
// streaming sink already saw is a prefix of the full run's deterministic
// emission order, and an armed-but-unfired token changes nothing — output
// stays byte-identical across thread counts and backends.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/support/cancel.h"
#include "src/support/random.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A reproducible random corpus (same shape helper as shard_engine_test).
SequenceDatabase RandomDb(uint64_t seed, size_t num_traces,
                          size_t max_length, size_t alphabet) {
  Rng rng(seed);
  SequenceDatabaseBuilder builder;
  for (size_t t = 0; t < num_traces; ++t) {
    std::string line;
    const size_t len = rng.Uniform(max_length + 1);
    for (size_t k = 0; k < len; ++k) {
      line += "ev" + std::to_string(rng.Uniform(alphabet)) + " ";
    }
    builder.AddTraceFromString(line);
  }
  return builder.Build();
}

// Collects patterns and fires the token once \p k have arrived. Keeps
// returning true: stopping is the token's job here, not the sink's.
class CancelAfterSink : public PatternSink {
 public:
  CancelAfterSink(size_t k, CancelToken* token) : k_(k), token_(token) {}

  bool Consume(const Pattern& pattern, uint64_t support) override {
    set_.Add(pattern, support);
    if (set_.size() >= k_) token_->Cancel();
    return true;
  }

  const PatternSet& set() const { return set_; }

 private:
  size_t k_;
  CancelToken* token_;
  PatternSet set_;
};

TEST(CancelTokenTest, StartsCleanAndFiresOnce) {
  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.fired());
  EXPECT_TRUE(token.StopStatus().ok());
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_TRUE(token.fired());
  EXPECT_EQ(token.stop_code(), StatusCode::kCancelled);
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineFiresImmediately) {
  CancelToken token;
  token.SetDeadline(std::chrono::milliseconds(0));
  EXPECT_TRUE(token.fired());
  EXPECT_EQ(token.stop_code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FirstFiringWins) {
  CancelToken token;
  token.Cancel();
  token.SetDeadline(std::chrono::milliseconds(0));
  EXPECT_EQ(token.stop_code(), StatusCode::kCancelled);  // Cancel was first.
}

TEST(CancelTokenTest, FutureDeadlineDoesNotFire) {
  CancelToken token;
  token.SetDeadline(std::chrono::hours(1));
  EXPECT_FALSE(token.ShouldStopExact());
  EXPECT_FALSE(token.fired());
}

// The prefix property, single-threaded: cancelling after K delivered
// patterns yields kCancelled, and everything the sink saw is a prefix of
// the uncancelled run's emission order (supports included).
TEST(CancelTest, CancelledStreamingScanDeliversAPrefix) {
  SequenceDatabase db = RandomDb(97, 40, 12, 5);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());
  const EventDictionary& dict = engine->database().dictionary();

  FullPatternsTask reference_task;
  reference_task.options.min_support = 2;
  CollectingPatternSink reference;
  ASSERT_TRUE(engine->Mine(reference_task, reference).ok());
  const std::string full = reference.set().ToString(dict);
  ASSERT_GT(reference.set().size(), 20u);

  for (size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
    SCOPED_TRACE("cancel after " + std::to_string(k));
    CancelToken token;
    FullPatternsTask task;
    task.options.min_support = 2;
    task.options.cancel = &token;
    CancelAfterSink sink(k, &token);
    Result<RunReport> run = engine->Mine(task, sink);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
    EXPECT_GE(sink.set().size(), k);
    EXPECT_LT(sink.set().size(), reference.set().size());
    const std::string partial = sink.set().ToString(dict);
    EXPECT_EQ(full.compare(0, partial.size(), partial), 0)
        << "partial output is not a prefix of the full emission order";
  }
}

// Same property through the parallel scan: a worker's subtree buffer is
// only replayed up to the first cancelled job, so delivery is still a
// prefix of the deterministic order.
TEST(CancelTest, CancelledParallelScanDeliversAPrefix) {
  SequenceDatabase db = RandomDb(98, 50, 12, 6);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());
  const EventDictionary& dict = engine->database().dictionary();

  FullPatternsTask reference_task;
  reference_task.options.min_support = 2;
  reference_task.options.num_threads = 4;
  CollectingPatternSink reference;
  ASSERT_TRUE(engine->Mine(reference_task, reference).ok());
  const std::string full = reference.set().ToString(dict);

  CancelToken token;
  FullPatternsTask task;
  task.options.min_support = 2;
  task.options.num_threads = 4;
  task.options.cancel = &token;
  CancelAfterSink sink(3, &token);
  Result<RunReport> run = engine->Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  const std::string partial = sink.set().ToString(dict);
  EXPECT_EQ(full.compare(0, partial.size(), partial), 0)
      << "parallel partial output is not a prefix of the full order";
}

// An armed token that never fires must change nothing: output stays
// byte-identical across thread counts and counting backends.
TEST(CancelTest, ArmedButUnfiredTokenKeepsOutputByteIdentical) {
  SequenceDatabase db = RandomDb(99, 40, 10, 6);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());
  const EventDictionary& dict = engine->database().dictionary();

  FullPatternsTask plain;
  plain.options.min_support = 2;
  CollectingPatternSink baseline;
  ASSERT_TRUE(engine->Mine(plain, baseline).ok());
  const std::string expected = baseline.set().ToString(dict);

  for (size_t threads : {size_t{1}, size_t{3}}) {
    for (BackendChoice backend : {BackendChoice::kCsr,
                                  BackendChoice::kBitmap}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      CancelToken token;
      token.SetDeadline(std::chrono::hours(1));
      FullPatternsTask task;
      task.options.min_support = 2;
      task.options.num_threads = threads;
      task.options.backend = backend;
      task.options.cancel = &token;
      CollectingPatternSink sink;
      Result<RunReport> run = engine->Mine(task, sink);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(sink.set().ToString(dict), expected);
    }
  }
}

// A deadline too small for the corpus stops the run with
// kDeadlineExceeded long before the full enumeration (which would be
// combinatorial over this corpus) could complete.
TEST(CancelTest, DeadlineStopsAnOversizedRun) {
  // A corpus big enough that the full run takes on the order of a
  // second (index build + scan over ~600k events): a 20ms deadline must
  // end the run far earlier, whichever phase it lands in.
  SequenceDatabase db = RandomDb(100, 20000, 60, 6);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());

  CancelToken token;
  token.SetDeadline(std::chrono::milliseconds(20));
  FullPatternsTask task;
  task.options.min_support = 2;
  task.options.cancel = &token;
  CollectingPatternSink sink;
  const auto start = std::chrono::steady_clock::now();
  Result<RunReport> run = engine->Mine(task, sink);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
  // Generous bound: the point is "milliseconds, not hours".
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
}

// Materialized tasks (closed patterns, rules) deliver nothing once the
// token fires before delivery: the error arrives instead of a partial set.
TEST(CancelTest, PreCancelledMaterializedTasksDeliverNothing) {
  SequenceDatabase db = RandomDb(101, 30, 10, 5);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());

  CancelToken token;
  token.Cancel();

  ClosedTask closed;
  closed.options.min_support = 2;
  closed.options.cancel = &token;
  CollectingPatternSink patterns;
  Result<RunReport> run = engine->Mine(closed, patterns);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(patterns.set().size(), 0u);

  RulesTask rules;
  rules.options.min_s_support = 2;
  rules.options.cancel = &token;
  CollectingRuleSink rule_sink;
  run = engine->Mine(rules, rule_sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(rule_sink.set().size(), 0u);
}

// Cancellation reaches the sharded path: a token fired during phase 1
// (here: before it) yields kCancelled and an empty delivery — the empty
// prefix, since phase-1/2 partial state has no exact supports to emit.
TEST(CancelTest, CancelDuringShardedPhaseOneDeliversNothing) {
  SequenceDatabase db = RandomDb(102, 40, 10, 5);
  const std::string smdbset = TempPath("cancel_sharded.smdbset");
  ShardWriterOptions options;
  options.shard_bytes = 400;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, options).ok());
  Result<Engine> engine = Engine::FromShardSet(smdbset);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_GT(engine->shard_set().num_shards(), 1u);

  CancelToken token;
  token.Cancel();
  FullPatternsTask task;
  task.options.min_support = 2;
  task.options.cancel = &token;
  CollectingPatternSink sink;
  Result<RunReport> run = engine->MineSharded(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.set().size(), 0u);
}

// The sequential miners honor the token too (PrefixSpan's scan).
TEST(CancelTest, PreCancelledSequentialTaskFails) {
  SequenceDatabase db = RandomDb(103, 30, 10, 5);
  Result<Engine> engine = Engine::Create(std::move(db));
  ASSERT_TRUE(engine.ok());

  CancelToken token;
  token.Cancel();
  SequentialTask task;
  task.options.min_support = 2;
  task.options.cancel = &token;
  CollectingPatternSink sink;
  Result<RunReport> run = engine->Mine(task, sink);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace specmine
