// Unit tests for src/trace: dictionary, sequences, database, position
// index, IO round trips, stats.

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/csv_trace_reader.h"
#include "src/trace/database_stats.h"
#include "src/trace/event_dictionary.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"
#include "src/trace/trace_io.h"

namespace specmine {
namespace {

TEST(EventDictionaryTest, InternAssignsDenseIdsInOrder) {
  EventDictionary dict;
  EXPECT_EQ(dict.Intern("lock"), 0u);
  EXPECT_EQ(dict.Intern("unlock"), 1u);
  EXPECT_EQ(dict.Intern("lock"), 0u);  // Idempotent.
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(0), "lock");
  EXPECT_EQ(dict.Name(1), "unlock");
}

TEST(EventDictionaryTest, LookupMissReturnsInvalid) {
  EventDictionary dict;
  dict.Intern("a");
  EXPECT_EQ(dict.Lookup("a"), 0u);
  EXPECT_EQ(dict.Lookup("zz"), kInvalidEvent);
}

TEST(EventDictionaryTest, NameOrPlaceholderForUnknownIds) {
  EventDictionary dict;
  dict.Intern("a");
  EXPECT_EQ(dict.NameOrPlaceholder(0), "a");
  EXPECT_EQ(dict.NameOrPlaceholder(17), "<ev17>");
}

TEST(SequenceTest, BasicAccessors) {
  Sequence s{1, 2, 1};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[2], 1u);
  s.Append(9);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[3], 9u);
  EXPECT_TRUE(Sequence().empty());
}

TEST(SequenceDatabaseTest, AddTraceInternsNames) {
  SequenceDatabase db;
  SeqId id = db.AddTrace({"a", "b", "a"});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db[0][0], db[0][2]);
  EXPECT_EQ(db.dictionary().size(), 2u);
  EXPECT_EQ(db.TotalEvents(), 3u);
}

TEST(SequenceDatabaseTest, AddTraceFromString) {
  SequenceDatabase db;
  db.AddTraceFromString("  lock   use unlock ");
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db.dictionary().Name(db[0][0]), "lock");
  EXPECT_EQ(db.dictionary().Name(db[0][2]), "unlock");
}

SequenceDatabase MakeDb() {
  SequenceDatabase db;
  db.AddTraceFromString("a b a c a");
  db.AddTraceFromString("b b c");
  db.AddTraceFromString("c");
  return db;
}

TEST(PositionIndexTest, PositionsAreSortedAndComplete) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EventId b = db.dictionary().Lookup("b");
  EventId c = db.dictionary().Lookup("c");
  EXPECT_EQ(index.Positions(a, 0), (std::vector<Pos>{0, 2, 4}));
  EXPECT_TRUE(index.Positions(a, 1).empty());
  EXPECT_EQ(index.Positions(b, 1), (std::vector<Pos>{0, 1}));
  EXPECT_EQ(index.Positions(c, 2), (std::vector<Pos>{0}));
}

TEST(PositionIndexTest, Counts) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EventId b = db.dictionary().Lookup("b");
  EventId c = db.dictionary().Lookup("c");
  EXPECT_EQ(index.TotalCount(a), 3u);
  EXPECT_EQ(index.TotalCount(b), 3u);
  EXPECT_EQ(index.TotalCount(c), 3u);
  EXPECT_EQ(index.SequenceCount(a), 1u);
  EXPECT_EQ(index.SequenceCount(b), 2u);
  EXPECT_EQ(index.SequenceCount(c), 3u);
}

TEST(PositionIndexTest, FirstAfterAndAtOrAfter) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.FirstAfter(a, 0, 0), 2u);
  EXPECT_EQ(index.FirstAfter(a, 0, 2), 4u);
  EXPECT_EQ(index.FirstAfter(a, 0, 4), kNoPos);
  EXPECT_EQ(index.FirstAtOrAfter(a, 0, 0), 0u);
  EXPECT_EQ(index.FirstAtOrAfter(a, 0, 3), 4u);
  EXPECT_EQ(index.FirstAtOrAfter(a, 1, 0), kNoPos);
}

TEST(PositionIndexTest, LastBefore) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.LastBefore(a, 0, 4), 2u);
  EXPECT_EQ(index.LastBefore(a, 0, 1), 0u);
  EXPECT_EQ(index.LastBefore(a, 0, 0), kNoPos);
}

TEST(PositionIndexTest, CountInRange) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.CountInRange(a, 0, 0, 4), 3u);
  EXPECT_EQ(index.CountInRange(a, 0, 1, 3), 1u);
  EXPECT_EQ(index.CountInRange(a, 0, 3, 3), 0u);
  EXPECT_EQ(index.CountInRange(a, 0, 3, 1), 0u);  // lo > hi.
}

TEST(TraceIoTest, TextRoundTrip) {
  SequenceDatabase db = MakeDb();
  std::ostringstream out;
  ASSERT_TRUE(WriteTextTraces(db, out).ok());
  std::istringstream in(out.str());
  Result<SequenceDatabase> rt = ReadTextTraces(in);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt->size(), db.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    ASSERT_EQ((*rt)[s].size(), db[s].size());
    for (Pos p = 0; p < db[s].size(); ++p) {
      EXPECT_EQ(rt->dictionary().Name((*rt)[s][p]),
                db.dictionary().Name(db[s][p]));
    }
  }
}

TEST(TraceIoTest, TextReaderSkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n a b \n# mid\nc\n");
  Result<SequenceDatabase> db = ReadTextTraces(in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);
  EXPECT_EQ((*db)[1].size(), 1u);
}

TEST(TraceIoTest, ReadMissingFileFails) {
  Result<SequenceDatabase> r = ReadTextTraceFile("/nonexistent/file.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TraceIoTest, SpmRoundTripPreservesIds) {
  SequenceDatabase db = MakeDb();
  std::ostringstream out;
  ASSERT_TRUE(WriteSpmTraces(db, out).ok());
  std::istringstream in(out.str());
  Result<SequenceDatabase> rt = ReadSpmTraces(in);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt->size(), db.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    EXPECT_EQ((*rt)[s], db[s]);  // Ids are preserved exactly.
  }
  EXPECT_EQ(rt->dictionary().size(), db.dictionary().size());
}

TEST(TraceIoTest, SpmRejectsMissingHeader) {
  std::istringstream in("!events 1\na\n");
  EXPECT_FALSE(ReadSpmTraces(in).ok());
}

TEST(TraceIoTest, SpmRejectsOutOfRangeId) {
  std::istringstream in("!specmine-traces v1\n!events 1\na\n!trace 1 5\n");
  Result<SequenceDatabase> r = ReadSpmTraces(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(TraceIoTest, SpmRejectsLengthMismatch) {
  std::istringstream in("!specmine-traces v1\n!events 1\na\n!trace 2 0\n");
  EXPECT_FALSE(ReadSpmTraces(in).ok());
}

TEST(DatabaseStatsTest, ComputesShape) {
  SequenceDatabase db = MakeDb();
  DatabaseStats st = ComputeStats(db);
  EXPECT_EQ(st.num_sequences, 3u);
  EXPECT_EQ(st.num_distinct_events, 3u);
  EXPECT_EQ(st.total_events, 9u);
  EXPECT_EQ(st.min_length, 1u);
  EXPECT_EQ(st.max_length, 5u);
  EXPECT_DOUBLE_EQ(st.avg_length, 3.0);
  EXPECT_NE(st.ToString().find("3 sequences"), std::string::npos);
}

TEST(CsvTraceReaderTest, GroupsRowsIntoSequences) {
  std::istringstream in("# comment\nt1,lock\nt2,open\nt1,unlock\nt2,close\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);  // t1 in first-appearance order.
  EXPECT_EQ(db->dictionary().Name((*db)[0][0]), "lock");
  EXPECT_EQ(db->dictionary().Name((*db)[1][1]), "close");
}

TEST(CsvTraceReaderTest, StrictModeReportsOffendingLineNumber) {
  // Line 1 is a comment, lines 2-3 are fine, line 4 has one column.
  std::istringstream in("# instrumented\nt1,lock\nt1,unlock\nbroken-row\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kParseError);
  EXPECT_NE(db.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(db.status().message().find("broken-row"), std::string::npos);
  EXPECT_NE(db.status().message().find("columns"), std::string::npos);
}

TEST(CsvTraceReaderTest, StrictModeReportsEmptyEventField) {
  std::istringstream in("t1,lock\nt1,\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kParseError);
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(db.status().message().find("event"), std::string::npos);
}

TEST(CsvTraceReaderTest, NonStrictModeSkipsMalformedRows) {
  std::istringstream in("t1,lock\nbroken-row\nt1,unlock\n");
  CsvTraceOptions options;
  options.strict = false;
  Result<SequenceDatabase> db = ReadCsvTraces(in, options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 1u);
  EXPECT_EQ((*db)[0].size(), 2u);
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  SequenceDatabase db;
  DatabaseStats st = ComputeStats(db);
  EXPECT_EQ(st.num_sequences, 0u);
  EXPECT_EQ(st.total_events, 0u);
  EXPECT_EQ(st.min_length, 0u);
  EXPECT_DOUBLE_EQ(st.avg_length, 0.0);
}

}  // namespace
}  // namespace specmine
