// Unit tests for src/trace: dictionary, sequences, database, position
// index, IO round trips, stats.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>
#include <vector>

#include "src/trace/csv_trace_reader.h"
#include "src/trace/database_stats.h"
#include "src/trace/event_dictionary.h"
#include "src/trace/position_index.h"
#include "src/trace/sequence_database.h"
#include "src/trace/trace_io.h"

namespace specmine {
namespace {

TEST(EventDictionaryTest, InternAssignsDenseIdsInOrder) {
  EventDictionary dict;
  EXPECT_EQ(dict.Intern("lock"), 0u);
  EXPECT_EQ(dict.Intern("unlock"), 1u);
  EXPECT_EQ(dict.Intern("lock"), 0u);  // Idempotent.
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(0), "lock");
  EXPECT_EQ(dict.Name(1), "unlock");
}

TEST(EventDictionaryTest, LookupMissReturnsInvalid) {
  EventDictionary dict;
  dict.Intern("a");
  EXPECT_EQ(dict.Lookup("a"), 0u);
  EXPECT_EQ(dict.Lookup("zz"), kInvalidEvent);
}

TEST(EventDictionaryTest, NameOrPlaceholderForUnknownIds) {
  EventDictionary dict;
  dict.Intern("a");
  EXPECT_EQ(dict.NameOrPlaceholder(0), "a");
  EXPECT_EQ(dict.NameOrPlaceholder(17), "<ev17>");
}

TEST(SequenceTest, BasicAccessors) {
  Sequence s{1, 2, 1};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[2], 1u);
  s.Append(9);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[3], 9u);
  EXPECT_TRUE(Sequence().empty());
}

TEST(SequenceDatabaseTest, AddTraceInternsNames) {
  SequenceDatabaseBuilder builder;
  SeqId id = builder.AddTrace({"a", "b", "a"});
  EXPECT_EQ(id, 0u);
  SequenceDatabase db = builder.Build();
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db[0][0], db[0][2]);
  EXPECT_EQ(db.dictionary().size(), 2u);
  EXPECT_EQ(db.TotalEvents(), 3u);
}

TEST(SequenceDatabaseTest, AddTraceFromString) {
  SequenceDatabaseBuilder builder;
  builder.AddTraceFromString("  lock   use unlock ");
  SequenceDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db.dictionary().Name(db[0][0]), "lock");
  EXPECT_EQ(db.dictionary().Name(db[0][2]), "unlock");
}

TEST(SequenceDatabaseTest, ColumnarLayoutIsContiguous) {
  SequenceDatabaseBuilder builder;
  builder.AddSequence({0, 1, 0});
  builder.AddSequence({2});
  builder.AddSequence({1, 2});
  SequenceDatabase db = builder.Build();
  // One flat arena delimited by CSR offsets — the whole point of the
  // columnar refactor and the invariant the binary format serializes.
  ASSERT_TRUE(db.owns_storage());
  EXPECT_EQ(db.offsets()[0], 0u);
  EXPECT_EQ(db.offsets()[1], 3u);
  EXPECT_EQ(db.offsets()[2], 4u);
  EXPECT_EQ(db.offsets()[3], 6u);
  const std::vector<EventId> arena(db.arena(), db.arena() + db.TotalEvents());
  EXPECT_EQ(arena, (std::vector<EventId>{0, 1, 0, 2, 1, 2}));
  // Spans are views straight into the arena, not copies.
  EXPECT_EQ(db[1].data(), db.arena() + 3);
}

TEST(SequenceDatabaseTest, AtIsBoundsChecked) {
  SequenceDatabaseBuilder builder;
  builder.AddSequence({0, 1});
  SequenceDatabase db = builder.Build();
  Result<EventSpan> good = db.at(0);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 2u);
  Result<EventSpan> bad = db.at(1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(bad.status().message().find("1"), std::string::npos);
}

TEST(SequenceDatabaseTest, IterationYieldsSpansInOrder) {
  SequenceDatabaseBuilder builder;
  builder.AddSequence({4, 5});
  builder.AddSequence({});
  builder.AddSequence({6});
  SequenceDatabase db = builder.Build();
  std::vector<size_t> sizes;
  for (EventSpan seq : db) sizes.push_back(seq.size());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 0, 1}));
}

TEST(SequenceDatabaseTest, MoveAndCopyPreserveContents) {
  SequenceDatabaseBuilder builder;
  builder.AddTrace({"a", "b"});
  builder.AddTrace({"b", "c", "b"});
  SequenceDatabase db = builder.Build();
  SequenceDatabase copy = db;            // Deep copy of the arena.
  SequenceDatabase moved = std::move(db);
  ASSERT_EQ(copy.size(), 2u);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(copy[1], moved[1]);
  EXPECT_NE(copy.arena(), moved.arena());  // Separate owned storage.
  EXPECT_EQ(copy.dictionary().size(), 3u);
}

TEST(SequenceDatabaseBuilderTest, BuildResetsTheBuilder) {
  SequenceDatabaseBuilder builder;
  builder.AddTraceFromString("a b");
  SequenceDatabase first = builder.Build();
  EXPECT_EQ(builder.size(), 0u);
  EXPECT_EQ(builder.TotalEvents(), 0u);
  builder.AddTraceFromString("c");
  SequenceDatabase second = builder.Build();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(first.TotalEvents(), 2u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second.TotalEvents(), 1u);
}

TEST(EventSpanTest, EqualityAndSubspan) {
  const std::vector<EventId> v{1, 2, 3, 2};
  EventSpan span(v);
  EXPECT_EQ(span, EventSpan(v.data(), v.size()));
  EXPECT_NE(span, span.subspan(1, 3));
  EXPECT_EQ(span.subspan(1, 2), EventSpan(v.data() + 1, 2));
  EXPECT_EQ(span, Sequence({1, 2, 3, 2}));  // Sequence interop.
  EXPECT_EQ(span.front(), 1u);
  EXPECT_EQ(span.back(), 2u);
}

SequenceDatabase MakeDb() {
  SequenceDatabaseBuilder db;
  db.AddTraceFromString("a b a c a");
  db.AddTraceFromString("b b c");
  db.AddTraceFromString("c");
  return db.Build();
}

TEST(PositionIndexTest, PositionsAreSortedAndComplete) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EventId b = db.dictionary().Lookup("b");
  EventId c = db.dictionary().Lookup("c");
  EXPECT_EQ(index.Positions(a, 0), (std::vector<Pos>{0, 2, 4}));
  EXPECT_TRUE(index.Positions(a, 1).empty());
  EXPECT_EQ(index.Positions(b, 1), (std::vector<Pos>{0, 1}));
  EXPECT_EQ(index.Positions(c, 2), (std::vector<Pos>{0}));
}

TEST(PositionIndexTest, Counts) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EventId b = db.dictionary().Lookup("b");
  EventId c = db.dictionary().Lookup("c");
  EXPECT_EQ(index.TotalCount(a), 3u);
  EXPECT_EQ(index.TotalCount(b), 3u);
  EXPECT_EQ(index.TotalCount(c), 3u);
  EXPECT_EQ(index.SequenceCount(a), 1u);
  EXPECT_EQ(index.SequenceCount(b), 2u);
  EXPECT_EQ(index.SequenceCount(c), 3u);
}

TEST(PositionIndexTest, FirstAfterAndAtOrAfter) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.FirstAfter(a, 0, 0), 2u);
  EXPECT_EQ(index.FirstAfter(a, 0, 2), 4u);
  EXPECT_EQ(index.FirstAfter(a, 0, 4), kNoPos);
  EXPECT_EQ(index.FirstAtOrAfter(a, 0, 0), 0u);
  EXPECT_EQ(index.FirstAtOrAfter(a, 0, 3), 4u);
  EXPECT_EQ(index.FirstAtOrAfter(a, 1, 0), kNoPos);
}

TEST(PositionIndexTest, LastBefore) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.LastBefore(a, 0, 4), 2u);
  EXPECT_EQ(index.LastBefore(a, 0, 1), 0u);
  EXPECT_EQ(index.LastBefore(a, 0, 0), kNoPos);
}

TEST(PositionIndexTest, CountInRange) {
  SequenceDatabase db = MakeDb();
  PositionIndex index(db);
  EventId a = db.dictionary().Lookup("a");
  EXPECT_EQ(index.CountInRange(a, 0, 0, 4), 3u);
  EXPECT_EQ(index.CountInRange(a, 0, 1, 3), 1u);
  EXPECT_EQ(index.CountInRange(a, 0, 3, 3), 0u);
  EXPECT_EQ(index.CountInRange(a, 0, 3, 1), 0u);  // lo > hi.
}

TEST(TraceIoTest, TextRoundTrip) {
  SequenceDatabase db = MakeDb();
  std::ostringstream out;
  ASSERT_TRUE(WriteTextTraces(db, out).ok());
  std::istringstream in(out.str());
  Result<SequenceDatabase> rt = ReadTextTraces(in);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt->size(), db.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    ASSERT_EQ((*rt)[s].size(), db[s].size());
    for (Pos p = 0; p < db[s].size(); ++p) {
      EXPECT_EQ(rt->dictionary().Name((*rt)[s][p]),
                db.dictionary().Name(db[s][p]));
    }
  }
}

TEST(TraceIoTest, TextReaderSkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n a b \n# mid\nc\n");
  Result<SequenceDatabase> db = ReadTextTraces(in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);
  EXPECT_EQ((*db)[1].size(), 1u);
}

TEST(TraceIoTest, ReadMissingFileFails) {
  Result<SequenceDatabase> r = ReadTextTraceFile("/nonexistent/file.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TraceIoTest, SpmRoundTripPreservesIds) {
  SequenceDatabase db = MakeDb();
  std::ostringstream out;
  ASSERT_TRUE(WriteSpmTraces(db, out).ok());
  std::istringstream in(out.str());
  Result<SequenceDatabase> rt = ReadSpmTraces(in);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt->size(), db.size());
  for (SeqId s = 0; s < db.size(); ++s) {
    EXPECT_EQ((*rt)[s], db[s]);  // Ids are preserved exactly.
  }
  EXPECT_EQ(rt->dictionary().size(), db.dictionary().size());
}

TEST(TraceIoTest, SpmRejectsMissingHeader) {
  std::istringstream in("!events 1\na\n");
  EXPECT_FALSE(ReadSpmTraces(in).ok());
}

TEST(TraceIoTest, SpmRejectsOutOfRangeId) {
  std::istringstream in("!specmine-traces v1\n!events 1\na\n!trace 1 5\n");
  Result<SequenceDatabase> r = ReadSpmTraces(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(TraceIoTest, SpmRejectsLengthMismatch) {
  std::istringstream in("!specmine-traces v1\n!events 1\na\n!trace 2 0\n");
  EXPECT_FALSE(ReadSpmTraces(in).ok());
}

TEST(DatabaseStatsTest, ComputesShape) {
  SequenceDatabase db = MakeDb();
  DatabaseStats st = ComputeStats(db);
  EXPECT_EQ(st.num_sequences, 3u);
  EXPECT_EQ(st.num_distinct_events, 3u);
  EXPECT_EQ(st.total_events, 9u);
  EXPECT_EQ(st.min_length, 1u);
  EXPECT_EQ(st.max_length, 5u);
  EXPECT_DOUBLE_EQ(st.avg_length, 3.0);
  EXPECT_NE(st.ToString().find("3 sequences"), std::string::npos);
}

TEST(CsvTraceReaderTest, GroupsRowsIntoSequences) {
  std::istringstream in("# comment\nt1,lock\nt2,open\nt1,unlock\nt2,close\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ((*db)[0].size(), 2u);  // t1 in first-appearance order.
  EXPECT_EQ(db->dictionary().Name((*db)[0][0]), "lock");
  EXPECT_EQ(db->dictionary().Name((*db)[1][1]), "close");
}

TEST(CsvTraceReaderTest, StrictModeReportsOffendingLineNumber) {
  // Line 1 is a comment, lines 2-3 are fine, line 4 has one column.
  std::istringstream in("# instrumented\nt1,lock\nt1,unlock\nbroken-row\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kParseError);
  EXPECT_NE(db.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(db.status().message().find("broken-row"), std::string::npos);
  EXPECT_NE(db.status().message().find("columns"), std::string::npos);
}

TEST(CsvTraceReaderTest, StrictModeReportsEmptyEventField) {
  std::istringstream in("t1,lock\nt1,\n");
  Result<SequenceDatabase> db = ReadCsvTraces(in, CsvTraceOptions{});
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kParseError);
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(db.status().message().find("event"), std::string::npos);
}

TEST(CsvTraceReaderTest, NonStrictModeSkipsMalformedRows) {
  std::istringstream in("t1,lock\nbroken-row\nt1,unlock\n");
  CsvTraceOptions options;
  options.strict = false;
  Result<SequenceDatabase> db = ReadCsvTraces(in, options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 1u);
  EXPECT_EQ((*db)[0].size(), 2u);
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  SequenceDatabase db;
  DatabaseStats st = ComputeStats(db);
  EXPECT_EQ(st.num_sequences, 0u);
  EXPECT_EQ(st.total_events, 0u);
  EXPECT_EQ(st.min_length, 0u);
  EXPECT_DOUBLE_EQ(st.avg_length, 0.0);
}

}  // namespace
}  // namespace specmine
