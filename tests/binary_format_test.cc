// Tests for the .smdb binary database format: round-trip fidelity (packed
// databases mine byte-identically to in-memory ones) and the reader's
// rejection of corrupt files (bad magic, wrong version, truncation,
// out-of-bounds offsets).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/trace/binary_format.h"
#include "src/trace/sequence_database.h"
#include "src/trace/trace_io.h"

namespace specmine {
namespace {

SequenceDatabase SampleDb() {
  SequenceDatabaseBuilder builder;
  builder.AddTraceFromString("lock read write unlock lock write unlock");
  builder.AddTraceFromString("open read close lock unlock");
  builder.AddTraceFromString("lock read unlock open read read close");
  builder.AddTraceFromString("open write close open read close");
  builder.AddTraceFromString("lock unlock lock read write unlock");
  return builder.Build();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SmdbPathTest, SuffixDetection) {
  EXPECT_TRUE(IsSmdbPath("traces.smdb"));
  EXPECT_TRUE(IsSmdbPath("/a/b/c.smdb"));
  EXPECT_FALSE(IsSmdbPath("traces.txt"));
  EXPECT_FALSE(IsSmdbPath("smdb"));
  EXPECT_FALSE(IsSmdbPath(""));
}

TEST(BinaryFormatTest, RoundTripPreservesEverything) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("roundtrip.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());

  Result<MappedDatabase> mapped = MappedDatabase::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const SequenceDatabase& rt = mapped->db();
  EXPECT_FALSE(rt.owns_storage());  // Zero-copy view into the mapping.
  ASSERT_EQ(rt.size(), db.size());
  ASSERT_EQ(rt.TotalEvents(), db.TotalEvents());
  ASSERT_EQ(rt.dictionary().size(), db.dictionary().size());
  for (size_t i = 0; i < db.dictionary().size(); ++i) {
    EXPECT_EQ(rt.dictionary().Name(static_cast<EventId>(i)),
              db.dictionary().Name(static_cast<EventId>(i)));
  }
  for (SeqId s = 0; s < db.size(); ++s) {
    EXPECT_EQ(rt[s], db[s]);  // Ids preserved exactly.
  }
  // The arena bytes in the file are the in-memory layout, verbatim.
  EXPECT_EQ(std::memcmp(rt.arena(), db.arena(),
                        db.TotalEvents() * sizeof(EventId)),
            0);
}

TEST(BinaryFormatTest, EmptyAndEmptyTraceDatabasesRoundTrip) {
  SequenceDatabaseBuilder builder;
  builder.AddSequence({});
  builder.AddTraceFromString("a");
  builder.AddSequence({});
  SequenceDatabase db = builder.Build();
  const std::string path = TempPath("empties.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  Result<MappedDatabase> mapped = MappedDatabase::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_EQ(mapped->db().size(), 3u);
  EXPECT_TRUE(mapped->db()[0].empty());
  EXPECT_EQ(mapped->db()[1].size(), 1u);
  EXPECT_TRUE(mapped->db()[2].empty());

  SequenceDatabase empty;
  const std::string empty_path = TempPath("empty.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(empty, empty_path).ok());
  Result<MappedDatabase> mapped_empty = MappedDatabase::Open(empty_path);
  ASSERT_TRUE(mapped_empty.ok()) << mapped_empty.status().ToString();
  EXPECT_TRUE(mapped_empty->db().empty());
}

// The acceptance property: mining a packed-and-mapped database produces
// byte-identical output to mining the in-memory database it came from.
TEST(BinaryFormatTest, MappedMiningIsByteIdenticalToInMemory) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("mine.smdb");

  Result<Engine> memory = Engine::Create(db);
  ASSERT_TRUE(memory.ok());
  ASSERT_TRUE(memory->SaveBinary(path).ok());
  Result<Engine> mapped = Engine::FromBinaryFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->memory_mapped());
  EXPECT_FALSE(memory->memory_mapped());

  ClosedTask closed;
  closed.options.min_support = 2;
  Result<PatternSet> p_mem = memory->CollectPatterns(closed);
  Result<PatternSet> p_map = mapped->CollectPatterns(closed);
  ASSERT_TRUE(p_mem.ok());
  ASSERT_TRUE(p_map.ok());
  EXPECT_GT(p_mem->size(), 0u);
  EXPECT_EQ(p_mem->ToString(memory->database().dictionary()),
            p_map->ToString(mapped->database().dictionary()));

  RulesTask rules;
  rules.options.min_s_support = 2;
  rules.options.min_confidence = 0.8;
  Result<RuleSet> r_mem = memory->CollectRules(rules);
  Result<RuleSet> r_map = mapped->CollectRules(rules);
  ASSERT_TRUE(r_mem.ok());
  ASSERT_TRUE(r_map.ok());
  ASSERT_EQ(r_mem->size(), r_map->size());
  for (size_t i = 0; i < r_mem->size(); ++i) {
    EXPECT_EQ((*r_mem)[i].ToString(memory->database().dictionary()),
              (*r_map)[i].ToString(mapped->database().dictionary()));
  }
}

// Property over generated shapes: text parse and .smdb mmap agree span for
// span on databases with empty traces, repeated names, varying lengths.
TEST(BinaryFormatTest, TextAndBinaryLoadsAgree) {
  SequenceDatabaseBuilder builder;
  for (int s = 0; s < 50; ++s) {
    std::string line;
    for (int k = 0; k < s % 7; ++k) {
      line += "ev" + std::to_string((s * 31 + k * 17) % 13) + " ";
    }
    builder.AddTraceFromString(line);
  }
  SequenceDatabase db = builder.Build();
  const std::string text_path = TempPath("agree.txt");
  const std::string smdb_path = TempPath("agree.smdb");
  ASSERT_TRUE(WriteTextTraceFile(db, text_path).ok());
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, smdb_path).ok());

  Result<SequenceDatabase> from_text = ReadTextTraceFile(text_path);
  Result<MappedDatabase> from_smdb = MappedDatabase::Open(smdb_path);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_smdb.ok());
  // The text reader drops blank lines (empty traces), the binary format
  // keeps them — compare only the non-empty traces, in order.
  std::vector<std::string> text_lines, smdb_lines;
  for (EventSpan seq : *from_text) {
    std::string line;
    for (EventId ev : seq) line += from_text->dictionary().Name(ev) + " ";
    text_lines.push_back(line);
  }
  for (EventSpan seq : from_smdb->db()) {
    if (seq.empty()) continue;
    std::string line;
    for (EventId ev : seq) line += from_smdb->db().dictionary().Name(ev) + " ";
    smdb_lines.push_back(line);
  }
  EXPECT_EQ(text_lines, smdb_lines);
}

TEST(BinaryFormatTest, RejectsBadMagic) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("badmagic.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsWrongVersion) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("badversion.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  const uint32_t bogus = 99;  // Version field sits at byte 8.
  std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsTruncatedArena) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("truncated.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 8);  // Chop the arena's tail.
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsFileSmallerThanHeader) {
  const std::string path = TempPath("tiny.smdb");
  WriteAll(path, std::vector<char>{'S', 'M', 'D', 'B'});
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("header"), std::string::npos);
}

TEST(BinaryFormatTest, RejectsOutOfBoundsTraceOffsets) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("badoffsets.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Recompute the layout the writer used to find the trace offset table.
  const uint64_t num_events = db.dictionary().size();
  uint64_t names_bytes = 0;
  for (uint64_t i = 0; i < num_events; ++i) {
    names_bytes += db.dictionary().Name(static_cast<EventId>(i)).size();
  }
  const uint64_t names_padded = (names_bytes + 7) & ~uint64_t{7};
  const size_t seq_offsets_off =
      static_cast<size_t>(96 + 8 * (num_events + 1) + names_padded);
  // Overwrite the second trace offset with a value past the arena end (and
  // past the next offset): both the monotonicity and span checks must
  // refuse to build spans from it.
  const uint64_t huge = db.TotalEvents() + 1000;
  std::memcpy(bytes.data() + seq_offsets_off + 8, &huge, sizeof(huge));
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);

  // And the final offset must land exactly on the arena end.
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  bytes = ReadAll(path);
  const uint64_t short_end = db.TotalEvents() - 1;
  std::memcpy(bytes.data() + seq_offsets_off + 8 * db.size(), &short_end,
              sizeof(short_end));
  WriteAll(path, bytes);
  r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(BinaryFormatTest, V2FilesCarryVerifiableChecksums) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("checksums.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  SmdbOpenOptions full;
  full.integrity = IntegrityMode::kFull;
  Result<MappedDatabase> r = MappedDatabase::Open(path, full);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->file_version(), kSmdbVersion);
  EXPECT_EQ(r->db().size(), db.size());
}

TEST(BinaryFormatTest, HeaderBitFlipIsCaughtByDefaultOpen) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("headerflip.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Corrupt a count field (num_sequences, byte 24). The header checksum —
  // verified before any count is trusted — must report it, not the
  // downstream structural checks.
  bytes[24] ^= 0x01;
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
  // kOff skips checksums; the structural size check still refuses it.
  SmdbOpenOptions off;
  off.integrity = IntegrityMode::kOff;
  EXPECT_FALSE(MappedDatabase::Open(path, off).ok());
}

TEST(BinaryFormatTest, PayloadBitFlipIsCaughtByFullIntegrity) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("payloadflip.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Flip the low bit of the first arena id: the result is still a valid
  // dictionary id (the sample alphabet has an even size), so structural
  // validation cannot see it — only the kFull digest can.
  const size_t arena_begin = bytes.size() - db.TotalEvents() * 4;
  bytes[arena_begin] ^= 0x01;
  WriteAll(path, bytes);
  // Header-only open cannot see it (the arena still parses structurally).
  Result<MappedDatabase> lax = MappedDatabase::Open(path);
  ASSERT_TRUE(lax.ok()) << lax.status().ToString();
  // Full integrity re-hashes the sections and refuses.
  SmdbOpenOptions full;
  full.integrity = IntegrityMode::kFull;
  Result<MappedDatabase> r = MappedDatabase::Open(path, full);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(BinaryFormatTest, LegacyV1FilesStillOpenUnderEveryMode) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("legacy.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path, kSmdbVersionLegacy).ok());
  for (IntegrityMode mode :
       {IntegrityMode::kOff, IntegrityMode::kHeader, IntegrityMode::kFull}) {
    SmdbOpenOptions options;
    options.integrity = mode;
    Result<MappedDatabase> r = MappedDatabase::Open(path, options);
    ASSERT_TRUE(r.ok()) << IntegrityModeName(mode) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->file_version(), kSmdbVersionLegacy);
    ASSERT_EQ(r->db().size(), db.size());
    for (SeqId s = 0; s < db.size(); ++s) EXPECT_EQ(r->db()[s], db[s]);
  }
  // And a v1 file is 32 bytes smaller than the v2 encoding of the same db.
  std::vector<char> v1 = ReadAll(path);
  const std::string v2_path = TempPath("legacy_v2.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, v2_path).ok());
  EXPECT_EQ(ReadAll(v2_path).size(), v1.size() + 32);
}

TEST(BinaryFormatTest, RejectsInconsistentHeaderSizes) {
  SequenceDatabase db = SampleDb();
  const std::string path = TempPath("badheader.smdb");
  ASSERT_TRUE(WriteBinaryDatabaseFile(db, path).ok());
  std::vector<char> bytes = ReadAll(path);
  // Inflate num_sequences (byte 24) without growing the file.
  const uint64_t bogus = db.size() + 7;
  std::memcpy(bytes.data() + 24, &bogus, sizeof(bogus));
  WriteAll(path, bytes);
  Result<MappedDatabase> r = MappedDatabase::Open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(BinaryFormatTest, OpenMissingFileIsIOError) {
  Result<MappedDatabase> r = MappedDatabase::Open("/nonexistent/db.smdb");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(BinaryFormatTest, EngineFromBinaryFileRejectsCorruptFile) {
  const std::string path = TempPath("engine_bad.smdb");
  WriteAll(path, std::vector<char>(128, 'Z'));
  Result<Engine> r = Engine::FromBinaryFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace specmine
