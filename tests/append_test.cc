// The append-equivalence property: appending traces to a packed .smdbset
// through an AppendSession, then mining, is byte-identical to repacking
// the whole corpus from scratch and mining that — across randomized
// corpora, append batches, shard-size bounds, backends, and thread
// counts, with the phase-1 candidate cache on or off. Plus the
// incremental-remine contract (a warm re-mine after an append scans only
// the new shards), cache invalidation (content / threshold / option
// changes miss; stale entries are dropped on rewrite), and crash
// recovery at every append stage (the set always reopens at the old or
// the new generation, never torn).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/phase1_cache.h"
#include "src/support/fault_injection.h"
#include "src/support/random.h"
#include "src/trace/append_session.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// A reproducible random corpus as trace lines, so the exact same traces
// can be packed, appended, and repacked.
std::vector<std::string> RandomLines(uint64_t seed, size_t num_traces,
                                     size_t max_length, size_t alphabet) {
  Rng rng(seed);
  std::vector<std::string> lines;
  lines.reserve(num_traces);
  for (size_t t = 0; t < num_traces; ++t) {
    std::string line;
    const size_t len = rng.Uniform(max_length + 1);
    for (size_t k = 0; k < len; ++k) {
      line += "ev" + std::to_string(rng.Uniform(alphabet)) + " ";
    }
    lines.push_back(line);
  }
  return lines;
}

SequenceDatabase DbFromLines(const std::vector<std::string>& lines) {
  SequenceDatabaseBuilder builder;
  for (const std::string& line : lines) builder.AddTraceFromString(line);
  return builder.Build();
}

// Packs \p lines at \p path and removes any phase-1 cache left beside it
// by an earlier test run (same seeds => same digests, which would turn an
// intended cold mine warm).
void PackSet(const std::vector<std::string>& lines, const std::string& path,
             uint64_t shard_bytes) {
  ShardWriterOptions options;
  options.shard_bytes = shard_bytes;
  Status written = WriteShardedDatabase(DbFromLines(lines), path, options);
  EXPECT_TRUE(written.ok()) << written.ToString();
  std::remove(Phase1CachePath(path).c_str());
}

// Appends \p lines to the set at \p path in one committed session and
// returns the committed generation.
uint64_t AppendLines(const std::string& path,
                     const std::vector<std::string>& lines,
                     uint64_t shard_bytes) {
  AppendOptions options;
  options.writer.shard_bytes = shard_bytes;
  Result<AppendSession> opened = AppendSession::Open(path, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return 0;
  AppendSession session = opened.TakeValueOrDie();
  for (const std::string& line : lines) {
    EXPECT_TRUE(session.AddTraceFromString(line).ok());
  }
  Status committed = session.Commit();
  EXPECT_TRUE(committed.ok()) << committed.ToString();
  return session.committed_generation();
}

struct MineOut {
  std::string text;  // PatternSet::ToString — content, supports, order.
  RunReport report;
};

// Opens the set fresh (no session-level caches survive) and runs the
// two-phase sharded miner.
MineOut MineSet(const std::string& path, uint64_t min_support,
                BackendChoice backend, unsigned num_threads, bool use_cache,
                size_t max_length = 0) {
  MineOut out;
  Result<Engine> opened = Engine::FromShardSet(path);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return out;
  Engine engine = opened.TakeValueOrDie();
  FullPatternsTask task;
  task.options.min_support = min_support;
  task.options.backend = backend;
  task.options.num_threads = num_threads;
  task.options.max_length = max_length;
  task.phase1_cache = use_cache;
  CollectingPatternSink sink;
  Result<RunReport> run = engine.MineSharded(task, sink);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (!run.ok()) return out;
  out.report = *run;
  out.text = sink.TakeSet().ToString(engine.database().dictionary());
  return out;
}

// --------------------------------------------------------------------------
// The core property: append-then-mine == repack-then-mine, byte for byte.

TEST(AppendTest, AppendThenMineMatchesRepackAcrossConfigs) {
  const BackendChoice kBackends[] = {BackendChoice::kAuto,
                                     BackendChoice::kCsr,
                                     BackendChoice::kBitmap};
  for (uint64_t seed : {3u, 19u}) {
    // The batch uses a larger alphabet, so appends also extend the
    // merged dictionary with names the base set never saw.
    std::vector<std::string> base = RandomLines(seed, 30, 10, 6);
    std::vector<std::string> extra = RandomLines(seed + 100, 15, 10, 8);
    std::vector<std::string> all = base;
    all.insert(all.end(), extra.begin(), extra.end());

    for (uint64_t shard_bytes : {300u, 1200u}) {
      const std::string stem =
          "equiv_" + std::to_string(seed) + "_" + std::to_string(shard_bytes);
      const std::string appended = TempPath(stem + ".smdbset");
      const std::string repacked = TempPath(stem + "_repack.smdbset");
      PackSet(base, appended, shard_bytes);
      ASSERT_EQ(AppendLines(appended, extra, shard_bytes), 1u);
      PackSet(all, repacked, shard_bytes);

      // Backends and threads cannot change the output, so one repack
      // mine is the expectation for every appended-set config.
      const std::string expected =
          MineSet(repacked, 2, BackendChoice::kAuto, 1, false).text;
      EXPECT_FALSE(expected.empty());
      for (BackendChoice backend : kBackends) {
        for (unsigned threads : {1u, 4u}) {
          EXPECT_EQ(MineSet(appended, 2, backend, threads, false).text,
                    expected)
              << "seed=" << seed << " shard_bytes=" << shard_bytes;
        }
      }

      // Cache path: the cold miss and the warm hit are both identical —
      // and the warm hit stays identical under a different backend and
      // thread count (the cache key is threshold + length cap only).
      MineOut cold = MineSet(appended, 2, BackendChoice::kAuto, 1, true);
      MineOut warm = MineSet(appended, 2, BackendChoice::kBitmap, 4, true);
      EXPECT_EQ(cold.text, expected);
      EXPECT_EQ(warm.text, expected);
      EXPECT_EQ(warm.report.shards_cached, warm.report.shards_total);
      EXPECT_EQ(warm.report.shards_scanned, 0u);
    }
  }
}

// --------------------------------------------------------------------------
// Warm-cache provenance: a repeat mine replays every shard from the
// on-disk cache and expands no phase-1 nodes at all.

TEST(AppendTest, WarmCacheRunIsByteIdenticalAndSkipsAllScans) {
  const std::string path = TempPath("warm.smdbset");
  PackSet(RandomLines(5, 40, 10, 6), path, 400);

  MineOut cold = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  ASSERT_GT(cold.report.shards_total, 1u);
  EXPECT_EQ(cold.report.shards_scanned, cold.report.shards_total);
  EXPECT_EQ(cold.report.shards_cached, 0u);
  EXPECT_TRUE(FileExists(Phase1CachePath(path)));

  MineOut warm = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  EXPECT_EQ(warm.text, cold.text);
  EXPECT_EQ(warm.report.shards_cached, warm.report.shards_total);
  EXPECT_EQ(warm.report.shards_scanned, 0u);
  for (size_t nodes : warm.report.shard_phase1_nodes) EXPECT_EQ(nodes, 0u);
}

// --------------------------------------------------------------------------
// The incremental contract: after an append, a warm re-mine scans
// exactly the new shards — every pre-existing shard is replayed from the
// cache at zero phase-1 nodes — and still matches a cache-off mine.

TEST(AppendTest, AppendedReMineScansOnlyTheNewShards) {
  const std::string path = TempPath("incremental.smdbset");
  PackSet(RandomLines(7, 40, 10, 6), path, 400);

  MineOut before = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  const size_t old_shards = before.report.shards_total;
  ASSERT_GT(old_shards, 1u);

  AppendLines(path, RandomLines(107, 20, 10, 8), 400);
  MineOut incremental = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  ASSERT_GT(incremental.report.shards_total, old_shards);
  EXPECT_EQ(incremental.report.shards_cached, old_shards);
  EXPECT_EQ(incremental.report.shards_scanned,
            incremental.report.shards_total - old_shards);
  ASSERT_EQ(incremental.report.shard_phase1_nodes.size(),
            incremental.report.shards_total);
  for (size_t i = 0; i < old_shards; ++i) {
    EXPECT_EQ(incremental.report.shard_phase1_nodes[i], 0u) << "shard " << i;
  }

  MineOut full = MineSet(path, 2, BackendChoice::kAuto, 1, false);
  EXPECT_EQ(incremental.text, full.text);
}

// --------------------------------------------------------------------------
// Cache invalidation: a threshold or option change misses; entries for
// both fingerprints then coexist, so flipping back stays warm.

TEST(AppendTest, ThresholdOrOptionChangeMissesTheCache) {
  const std::string path = TempPath("fingerprint.smdbset");
  PackSet(RandomLines(9, 40, 10, 6), path, 400);

  MineOut s2 = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  const size_t shards = s2.report.shards_total;
  ASSERT_GT(shards, 1u);

  // Threshold change: cold, then warm on repeat.
  MineOut s3 = MineSet(path, 3, BackendChoice::kAuto, 1, true);
  EXPECT_EQ(s3.report.shards_cached, 0u);
  EXPECT_EQ(MineSet(path, 3, BackendChoice::kAuto, 1, true)
                .report.shards_cached,
            shards);

  // Length-cap change: cold, then warm on repeat.
  MineOut capped = MineSet(path, 2, BackendChoice::kAuto, 1, true, 2);
  EXPECT_EQ(capped.report.shards_cached, 0u);
  EXPECT_EQ(MineSet(path, 2, BackendChoice::kAuto, 1, true, 2)
                .report.shards_cached,
            shards);

  // The original fingerprint survived both rewrites (the saver carries
  // still-current entries of other fingerprints forward).
  EXPECT_EQ(MineSet(path, 2, BackendChoice::kAuto, 1, true)
                .report.shards_cached,
            shards);
}

// Cache invalidation: rewriting a shard's bytes (here: repacking a
// different corpus over the same manifest path) changes its content
// digest, so nothing is replayed from the stale cache — and the rewrite
// that follows drops every entry whose shard no longer exists.

TEST(AppendTest, ShardContentChangeMissesTheCacheAndDropsStaleEntries) {
  const std::string path = TempPath("content.smdbset");
  PackSet(RandomLines(13, 40, 10, 6), path, 400);
  MineOut first = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  ASSERT_GT(first.report.shards_total, 1u);
  EXPECT_TRUE(FileExists(Phase1CachePath(path)));

  // Repack different traces over the same path, keeping the now-stale
  // cache file in place.
  ShardWriterOptions options;
  options.shard_bytes = 400;
  ASSERT_TRUE(WriteShardedDatabase(DbFromLines(RandomLines(14, 40, 10, 6)),
                                   path, options)
                  .ok());

  MineOut after = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  EXPECT_EQ(after.report.shards_cached, 0u);
  EXPECT_EQ(after.text, MineSet(path, 2, BackendChoice::kAuto, 1, false).text);

  // The rewrite garbage-collected the old generation's entries: every
  // surviving digest belongs to a current shard.
  Result<ShardedDatabase> set = ShardedDatabase::Open(path);
  ASSERT_TRUE(set.ok());
  std::vector<uint64_t> digests;
  for (size_t i = 0; i < set->num_shards(); ++i) {
    digests.push_back(set->ComputeShardDigest(i));
  }
  Result<Phase1Cache> cache = LoadPhase1Cache(Phase1CachePath(path));
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_FALSE(cache->entries.empty());
  for (const Phase1CacheEntry& entry : cache->entries) {
    EXPECT_NE(std::find(digests.begin(), digests.end(), entry.shard_digest),
              digests.end())
        << "stale cache entry survived the rewrite";
  }
}

// --------------------------------------------------------------------------
// Crash recovery: a fault at any append stage leaves the set at its old
// generation, fully mineable, with no uncommitted shard file behind; a
// clean retry then lands the new generation.

TEST(AppendTest, FaultedAppendLeavesTheOldGenerationIntact) {
  std::vector<std::string> base = RandomLines(21, 20, 8, 5);
  std::vector<std::string> extra = RandomLines(121, 8, 8, 6);
  std::vector<std::string> all = base;
  all.insert(all.end(), extra.begin(), extra.end());

  // countdown 0 fails the tail shard's rename; countdown 1 lets the
  // shard land and fails the manifest's rename instead.
  for (int countdown : {0, 1}) {
    const std::string path =
        TempPath("crash_" + std::to_string(countdown) + ".smdbset");
    PackSet(base, path, 1u << 20);  // One sealed shard: .0000.smdb.
    const std::string baseline =
        MineSet(path, 2, BackendChoice::kAuto, 1, false).text;
    const std::string tail_shard =
        TempPath("crash_" + std::to_string(countdown) + ".0001.smdb");
    std::remove(tail_shard.c_str());  // Leftover from a previous run.

    {
      ScopedFault fault("format_util.rename", countdown,
                        Status::IOError("injected crash"));
      Result<AppendSession> opened = AppendSession::Open(path);
      ASSERT_TRUE(opened.ok());
      AppendSession session = opened.TakeValueOrDie();
      for (const std::string& line : extra) {
        ASSERT_TRUE(session.AddTraceFromString(line).ok());
      }
      EXPECT_FALSE(session.Commit().ok());
    }

    // The old manifest — and so the old generation — is fully intact,
    // and the unreferenced tail file was cleaned up.
    EXPECT_FALSE(FileExists(tail_shard));
    Result<ShardSetManifest> manifest = ReadShardSetManifest(path);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    EXPECT_EQ(manifest->generation, 0u);
    EXPECT_EQ(manifest->total_sequences, base.size());
    EXPECT_EQ(MineSet(path, 2, BackendChoice::kAuto, 1, false).text,
              baseline);

    // A clean append after the crash succeeds and matches the repack.
    ASSERT_EQ(AppendLines(path, extra, 1u << 20), 1u);
    const std::string repacked =
        TempPath("crash_" + std::to_string(countdown) + "_repack.smdbset");
    PackSet(all, repacked, 1u << 20);
    EXPECT_EQ(MineSet(path, 2, BackendChoice::kAuto, 1, false).text,
              MineSet(repacked, 2, BackendChoice::kAuto, 1, false).text);
  }
}

// A failed phase-1 cache persist must not fail the mine — the cache is
// an accelerator, not a correctness structure.

TEST(AppendTest, FailedCachePersistDoesNotFailTheMine) {
  const std::string path = TempPath("cache_persist.smdbset");
  PackSet(RandomLines(23, 30, 10, 6), path, 400);
  const std::string expected =
      MineSet(path, 2, BackendChoice::kAuto, 1, false).text;

  {
    ScopedFault fault("phase1_cache.save", 0, Status::IOError("injected"));
    MineOut mined = MineSet(path, 2, BackendChoice::kAuto, 1, true);
    EXPECT_EQ(mined.text, expected);
  }
  EXPECT_FALSE(FileExists(Phase1CachePath(path)));

  // The next mine is cold again (nothing was persisted) but correct,
  // and persists normally.
  MineOut retry = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  EXPECT_EQ(retry.text, expected);
  EXPECT_EQ(retry.report.shards_cached, 0u);
  EXPECT_TRUE(FileExists(Phase1CachePath(path)));
}

// A corrupt cache file is treated as empty: the mine scans cold, stays
// correct, and rewrites a healthy cache.

TEST(AppendTest, CorruptCacheFileIsIgnoredAndRewritten) {
  const std::string path = TempPath("cache_corrupt.smdbset");
  PackSet(RandomLines(25, 30, 10, 6), path, 400);
  MineOut cold = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  ASSERT_TRUE(FileExists(Phase1CachePath(path)));

  {
    std::ofstream out(Phase1CachePath(path), std::ios::trunc);
    out << "not a cache file";
  }
  EXPECT_FALSE(LoadPhase1Cache(Phase1CachePath(path)).ok());

  MineOut mined = MineSet(path, 2, BackendChoice::kAuto, 1, true);
  EXPECT_EQ(mined.text, cold.text);
  EXPECT_EQ(mined.report.shards_cached, 0u);
  EXPECT_TRUE(LoadPhase1Cache(Phase1CachePath(path)).ok());
}

// --------------------------------------------------------------------------
// The ShardWriter sticky-failure pin: a failed Finish() deletes the
// shard files it wrote since the last commit — no manifest will ever
// reference them, and leaving them behind would shadow the paths the
// next pack or append writes.

TEST(AppendTest, FailedFinishRemovesUncommittedShardFiles) {
  const std::string path = TempPath("sticky.smdbset");
  const std::string shard0 = TempPath("sticky.0000.smdb");
  ShardWriter writer(path);
  ASSERT_TRUE(writer.AddTraceFromString("a b a b").ok());
  ASSERT_TRUE(writer.CutShard().ok());
  ASSERT_TRUE(FileExists(shard0));
  ASSERT_TRUE(writer.AddTraceFromString("b c").ok());

  {
    // First rename (the tail shard written by Finish) fails.
    ScopedFault fault("format_util.rename", 0, Status::IOError("injected"));
    EXPECT_FALSE(writer.Finish().ok());
  }
  EXPECT_FALSE(FileExists(shard0));
  EXPECT_FALSE(FileExists(path));
}

// --------------------------------------------------------------------------
// Seal boundaries and generations.

TEST(AppendTest, TimeBoundarySealsAStaleTail) {
  const std::string path = TempPath("time_seal.smdbset");
  PackSet(RandomLines(27, 10, 8, 5), path, 1u << 20);  // One shard.

  AppendOptions options;
  options.seal_after_seconds = 0.05;
  Result<AppendSession> opened = AppendSession::Open(path, options);
  ASSERT_TRUE(opened.ok());
  AppendSession session = opened.TakeValueOrDie();
  ASSERT_TRUE(session.AddTraceFromString("x y x").ok());
  EXPECT_EQ(session.shards(), 2u);  // Base shard + open tail.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The stale tail is sealed before this trace, which starts a new one.
  ASSERT_TRUE(session.AddTraceFromString("y z").ok());
  EXPECT_EQ(session.shards(), 3u);
  ASSERT_TRUE(session.Commit().ok());

  Result<ShardSetManifest> manifest = ReadShardSetManifest(path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->shards.size(), 3u);
}

TEST(AppendTest, GenerationAdvancesByOnePerCommit) {
  const std::string path = TempPath("generation.smdbset");
  PackSet(RandomLines(29, 10, 8, 5), path, 1u << 20);
  Result<ShardSetManifest> packed = ReadShardSetManifest(path);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->generation, 0u);

  {
    Result<AppendSession> opened = AppendSession::Open(path);
    ASSERT_TRUE(opened.ok());
    AppendSession session = opened.TakeValueOrDie();
    EXPECT_EQ(session.base_generation(), 0u);
    ASSERT_TRUE(session.AddTraceFromString("p q").ok());
    ASSERT_TRUE(session.Commit().ok());
    EXPECT_EQ(session.committed_generation(), 1u);
    // The session stays open: another batch, another commit, +1 again.
    ASSERT_TRUE(session.AddTraceFromString("q r").ok());
    ASSERT_TRUE(session.Commit().ok());
    EXPECT_EQ(session.committed_generation(), 2u);
  }

  Result<AppendSession> second = AppendSession::Open(path);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->base_generation(), 2u);
  ASSERT_EQ(AppendLines(path, {"r s"}, 1u << 20), 3u);

  Result<ShardSetManifest> final_manifest = ReadShardSetManifest(path);
  ASSERT_TRUE(final_manifest.ok());
  EXPECT_EQ(final_manifest->generation, 3u);
  EXPECT_EQ(final_manifest->total_sequences, 13u);
}

}  // namespace
}  // namespace specmine
