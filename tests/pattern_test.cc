// Unit tests for src/patterns: Pattern relations and PatternSet.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/patterns/pattern.h"
#include "src/patterns/pattern_set.h"

namespace specmine {
namespace {

TEST(PatternTest, BasicAccessors) {
  Pattern p{3, 1, 4};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.first(), 3u);
  EXPECT_EQ(p.last(), 4u);
  EXPECT_EQ(p[1], 1u);
  EXPECT_TRUE(Pattern().empty());
}

TEST(PatternTest, ExtendPrependConcatInsertErase) {
  Pattern p{1, 2};
  EXPECT_EQ(p.Extend(3), (Pattern{1, 2, 3}));
  EXPECT_EQ(p.Prepend(0), (Pattern{0, 1, 2}));
  EXPECT_EQ(p.Concat(Pattern{7, 8}), (Pattern{1, 2, 7, 8}));
  EXPECT_EQ(p.Insert(0, 9), (Pattern{9, 1, 2}));
  EXPECT_EQ(p.Insert(1, 9), (Pattern{1, 9, 2}));
  EXPECT_EQ(p.Insert(2, 9), (Pattern{1, 2, 9}));
  EXPECT_EQ((Pattern{1, 2, 3}).Erase(1), (Pattern{1, 3}));
  // Originals untouched (value semantics).
  EXPECT_EQ(p, (Pattern{1, 2}));
}

TEST(PatternTest, SubsequenceOfPattern) {
  Pattern abc{1, 2, 3};
  EXPECT_TRUE((Pattern{1, 3}).IsSubsequenceOf(abc));
  EXPECT_TRUE((Pattern{2}).IsSubsequenceOf(abc));
  EXPECT_TRUE(abc.IsSubsequenceOf(abc));
  EXPECT_TRUE(Pattern().IsSubsequenceOf(abc));
  EXPECT_FALSE((Pattern{3, 1}).IsSubsequenceOf(abc));  // Order matters.
  EXPECT_FALSE((Pattern{1, 1}).IsSubsequenceOf(abc));  // Multiplicity.
  EXPECT_FALSE((Pattern{1, 2, 3, 4}).IsSubsequenceOf(abc));
}

TEST(PatternTest, SubsequenceOfSequence) {
  Sequence seq{5, 1, 9, 2, 9, 3};
  EXPECT_TRUE((Pattern{1, 2, 3}).IsSubsequenceOf(seq));
  EXPECT_TRUE((Pattern{9, 9}).IsSubsequenceOf(seq));
  EXPECT_FALSE((Pattern{3, 2}).IsSubsequenceOf(seq));
}

TEST(PatternTest, SubsequenceWithRepeats) {
  Pattern big{1, 1, 2, 1};
  EXPECT_TRUE((Pattern{1, 1, 1}).IsSubsequenceOf(big));
  EXPECT_FALSE((Pattern{1, 1, 1, 1}).IsSubsequenceOf(big));
  EXPECT_TRUE((Pattern{1, 2, 1}).IsSubsequenceOf(big));
  EXPECT_FALSE((Pattern{2, 2}).IsSubsequenceOf(big));
}

TEST(PatternTest, AlphabetAndContains) {
  Pattern p{4, 4, 2};
  auto alpha = p.Alphabet();
  EXPECT_EQ(alpha.size(), 2u);
  EXPECT_TRUE(alpha.count(4));
  EXPECT_TRUE(alpha.count(2));
  EXPECT_TRUE(p.Contains(2));
  EXPECT_FALSE(p.Contains(7));
}

TEST(PatternTest, ToStringWithDictionary) {
  EventDictionary dict;
  dict.Intern("lock");
  dict.Intern("unlock");
  Pattern p{0, 1};
  EXPECT_EQ(p.ToString(dict), "<lock, unlock>");
  EXPECT_EQ(p.ToString(), "<0, 1>");
  EXPECT_EQ(Pattern().ToString(), "<>");
}

TEST(PatternTest, LexicographicOrder) {
  EXPECT_LT(Pattern({1}), Pattern({1, 1}));
  EXPECT_LT(Pattern({1, 2}), Pattern({2}));
  EXPECT_FALSE(Pattern({2}) < Pattern({1, 9}));
}

TEST(PatternTest, HashEqualPatternsCollide) {
  PatternHash h;
  EXPECT_EQ(h(Pattern{1, 2, 3}), h(Pattern{1, 2, 3}));
  std::unordered_set<Pattern, PatternHash> set;
  set.insert(Pattern{1, 2});
  set.insert(Pattern{1, 2});
  set.insert(Pattern{2, 1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(PatternSetTest, AddAndLookup) {
  PatternSet set;
  set.Add(Pattern{1, 2}, 10);
  set.Add(Pattern{3}, 5);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(Pattern{1, 2}));
  EXPECT_FALSE(set.Contains(Pattern{2, 1}));
  EXPECT_EQ(set.SupportOf(Pattern{1, 2}), 10u);
  EXPECT_EQ(set.SupportOf(Pattern{9}), 0u);
}

TEST(PatternSetTest, SortBySupportDescendingThenLex) {
  PatternSet set;
  set.Add(Pattern{5}, 1);
  set.Add(Pattern{2}, 9);
  set.Add(Pattern{1}, 9);
  set.SortBySupport();
  EXPECT_EQ(set[0].pattern, Pattern{1});
  EXPECT_EQ(set[1].pattern, Pattern{2});
  EXPECT_EQ(set[2].pattern, Pattern{5});
}

TEST(PatternSetTest, SortLexicographic) {
  PatternSet set;
  set.Add(Pattern{2}, 1);
  set.Add(Pattern{1, 2}, 2);
  set.Add(Pattern{1}, 3);
  set.SortLexicographic();
  EXPECT_EQ(set[0].pattern, Pattern{1});
  EXPECT_EQ(set[1].pattern, (Pattern{1, 2}));
  EXPECT_EQ(set[2].pattern, Pattern{2});
}

TEST(PatternSetTest, Longest) {
  PatternSet set;
  set.Add(Pattern{1}, 100);
  set.Add(Pattern{1, 2, 3}, 2);
  set.Add(Pattern{4, 5}, 50);
  EXPECT_EQ(set.Longest().pattern, (Pattern{1, 2, 3}));
}

TEST(PatternSetTest, ToStringRendersEveryPattern) {
  EventDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  PatternSet set;
  set.Add(Pattern{0, 1}, 3);
  std::string s = set.ToString(dict);
  EXPECT_NE(s.find("<a, b>"), std::string::npos);
  EXPECT_NE(s.find("sup=3"), std::string::npos);
}

}  // namespace
}  // namespace specmine
