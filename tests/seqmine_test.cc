// Unit + oracle tests for src/seqmine: occurrence engine, PrefixSpan,
// BIDE-style closed miner, generator miner.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/seqmine/closed_sequential_miner.h"
#include "src/seqmine/generator_miner.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/seqmine/prefixspan.h"
#include "src/support/strings.h"
#include "src/support/random.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

Pattern P(const SequenceDatabase& db, const std::string& names) {
  Pattern p;
  for (const auto& tok : SplitAndTrim(names, ' ')) {
    EventId id = db.dictionary().Lookup(tok);
    EXPECT_NE(id, kInvalidEvent) << tok;
    p = p.Extend(id);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Occurrence engine.

TEST(OccurrenceEngineTest, EarliestEmbeddingEnd) {
  SequenceDatabase db = MakeDb({"a x b x a b"});
  const EventSpan s = db[0];
  EXPECT_EQ(EarliestEmbeddingEnd(P(db, "a b"), s), 2u);
  EXPECT_EQ(EarliestEmbeddingEnd(P(db, "a b a"), s), 4u);
  EXPECT_EQ(EarliestEmbeddingEnd(P(db, "b a b"), s), 5u);
  EXPECT_EQ(EarliestEmbeddingEnd(P(db, "b b b"), s), kNoPos);
  EXPECT_EQ(EarliestEmbeddingEnd(P(db, "a"), s, 1), 4u);  // Offset.
  EXPECT_EQ(EmbedsAt(P(db, "a b"), s, 3), true);
  EXPECT_EQ(EmbedsAt(P(db, "a b"), s, 5), false);
}

TEST(OccurrenceEngineTest, OccurrencePointsDefinition51) {
  // occ(P, S): positions j with S[j] = last(P) and prefix S[0..j] ⊒ P.
  SequenceDatabase db = MakeDb({"a b b a b"});
  const EventSpan s = db[0];
  // <a, b>: prefix must contain a before the b. b's at 1, 2, 4; all after
  // the first a at 0.
  EXPECT_EQ(OccurrencePoints(P(db, "a b"), s), (std::vector<Pos>{1, 2, 4}));
  // <b>: every b.
  EXPECT_EQ(OccurrencePoints(P(db, "b"), s), (std::vector<Pos>{1, 2, 4}));
  // <b, a>: a's after the first b -> position 3 only.
  EXPECT_EQ(OccurrencePoints(P(db, "b a"), s), (std::vector<Pos>{3}));
  // <a, b, b>: earliest end of <a, b> prefix is 1; b's after -> 2, 4.
  EXPECT_EQ(OccurrencePoints(P(db, "a b b"), s), (std::vector<Pos>{2, 4}));
  // Absent premise.
  EXPECT_TRUE(OccurrencePoints(P(db, "b b b b"), s).empty());
}

TEST(OccurrenceEngineTest, OccurrencePointsWithOffset) {
  SequenceDatabase db = MakeDb({"a b a b"});
  const EventSpan s = db[0];
  EXPECT_EQ(OccurrencePoints(P(db, "a b"), s, 1), (std::vector<Pos>{3}));
  EXPECT_EQ(OccurrencePoints(P(db, "a"), s, 1), (std::vector<Pos>{2}));
}

TEST(OccurrenceEngineTest, CountOccurrencesAcrossSequences) {
  SequenceDatabase db = MakeDb({"a b b", "b a b", "x"});
  EXPECT_EQ(CountOccurrences(P(db, "a b"), db), 3u);  // 2 + 1 + 0.
}

TEST(OccurrenceEngineTest, LatestEmbeddingStart) {
  SequenceDatabase db = MakeDb({"a b a b a"});
  const EventSpan s = db[0];
  EXPECT_EQ(LatestEmbeddingStart(P(db, "a b"), s, 0, 4), 2u);
  EXPECT_EQ(LatestEmbeddingStart(P(db, "a b"), s, 0, 3), 2u);
  EXPECT_EQ(LatestEmbeddingStart(P(db, "a b"), s, 0, 2), 0u);
  EXPECT_EQ(LatestEmbeddingStart(P(db, "a b"), s, 3, 4), kNoPos);
  EXPECT_EQ(LatestEmbeddingStart(P(db, "a"), s, 0, 4), 4u);
}

// ---------------------------------------------------------------------------
// Brute-force oracle for sequential mining over units.

uint64_t OracleSupport(const UnitDatabase& units, const Pattern& p) {
  uint64_t n = 0;
  for (const Unit& u : units.units()) {
    if (EmbedsAt(p, units.db()[u.seq], u.start)) ++n;
  }
  return n;
}

// Enumerates all frequent patterns by BFS (complete under apriori).
std::map<Pattern, uint64_t> OracleFrequent(const UnitDatabase& units,
                                           uint64_t min_sup,
                                           size_t max_len = 0) {
  std::map<Pattern, uint64_t> out;
  std::vector<Pattern> frontier;
  const size_t num_events = units.db().dictionary().size();
  for (EventId e = 0; e < num_events; ++e) {
    Pattern p{e};
    uint64_t sup = OracleSupport(units, p);
    if (sup >= min_sup) {
      out[p] = sup;
      frontier.push_back(p);
    }
  }
  while (!frontier.empty() &&
         (max_len == 0 || frontier.front().size() < max_len)) {
    std::vector<Pattern> next;
    for (const Pattern& p : frontier) {
      for (EventId e = 0; e < num_events; ++e) {
        Pattern q = p.Extend(e);
        uint64_t sup = OracleSupport(units, q);
        if (sup >= min_sup) {
          out[q] = sup;
          next.push_back(q);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

std::map<Pattern, uint64_t> ToMap(const PatternSet& set) {
  std::map<Pattern, uint64_t> out;
  for (const auto& it : set.items()) out[it.pattern] = it.support;
  return out;
}

SequenceDatabase RandomDb(uint64_t seed, size_t num_seqs, size_t max_len,
                          size_t alphabet) {
  Rng rng(seed);
  SequenceDatabaseBuilder db;
  for (size_t i = 0; i < alphabet; ++i) {
    db.mutable_dictionary()->Intern("e" + std::to_string(i));
  }
  for (size_t s = 0; s < num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(max_len);
    for (size_t k = 0; k < len; ++k) {
      seq.Append(static_cast<EventId>(rng.Uniform(alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

// ---------------------------------------------------------------------------
// PrefixSpan.

TEST(PrefixSpanTest, SimpleHandComputedExample) {
  SequenceDatabase db = MakeDb({"a b c", "a c", "b c"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  SeqMinerOptions options;
  options.min_support = 2;
  PatternSet out = MineFrequentSequential(units, options);
  auto m = ToMap(out);
  EXPECT_EQ(m.at(P(db, "a")), 2u);
  EXPECT_EQ(m.at(P(db, "b")), 2u);
  EXPECT_EQ(m.at(P(db, "c")), 3u);
  EXPECT_EQ(m.at(P(db, "a c")), 2u);
  EXPECT_EQ(m.at(P(db, "b c")), 2u);
  // <a, b> occurs in trace 0 only: below min_support, not emitted.
  EXPECT_EQ(m.count(P(db, "a b")), 0u);
}

TEST(PrefixSpanTest, SupportCountsUnitsNotOccurrences) {
  SequenceDatabase db = MakeDb({"a a a"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  SeqMinerOptions options;
  options.min_support = 1;
  auto m = ToMap(MineFrequentSequential(units, options));
  EXPECT_EQ(m.at(P(db, "a")), 1u);
  EXPECT_EQ(m.at(P(db, "a a")), 1u);
  EXPECT_EQ(m.at(P(db, "a a a")), 1u);
  EXPECT_EQ(m.count(P(db, "a a a a")), 0u);
}

TEST(PrefixSpanTest, RespectsMaxLength) {
  SequenceDatabase db = MakeDb({"a b c d"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  SeqMinerOptions options;
  options.min_support = 1;
  options.max_length = 2;
  PatternSet out = MineFrequentSequential(units, options);
  for (const auto& it : out.items()) {
    EXPECT_LE(it.pattern.size(), 2u);
  }
}

TEST(PrefixSpanTest, MaxPatternsTruncates) {
  SequenceDatabase db = MakeDb({"a b c d e f"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  SeqMinerOptions options;
  options.min_support = 1;
  options.max_patterns = 5;
  SeqMinerStats stats;
  PatternSet out = MineFrequentSequential(units, options, &stats);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(stats.truncated);
}

TEST(PrefixSpanTest, UnitsWithOffsetsRestrictMatching) {
  SequenceDatabase db = MakeDb({"a b a b"});
  // Two units into the same sequence at different offsets.
  UnitDatabase units(db, {Unit{0, 0}, Unit{0, 2}});
  SeqMinerOptions options;
  options.min_support = 2;
  auto m = ToMap(MineFrequentSequential(units, options));
  EXPECT_EQ(m.at(P(db, "a b")), 2u);   // Embeds in both suffixes.
  EXPECT_EQ(m.count(P(db, "a b a")), 0u);  // Only in the first.
}

TEST(PrefixSpanTest, MatchesOracleOnRandomDatabases) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SequenceDatabase db = RandomDb(seed, 6, 8, 4);
    UnitDatabase units = UnitDatabase::WholeSequences(db);
    for (uint64_t min_sup : {1u, 2u, 3u}) {
      SeqMinerOptions options;
      options.min_support = min_sup;
      auto got = ToMap(MineFrequentSequential(units, options));
      auto want = OracleFrequent(units, min_sup);
      EXPECT_EQ(got, want) << "seed=" << seed << " min_sup=" << min_sup;
    }
  }
}

// ---------------------------------------------------------------------------
// Closed sequential miner.

// Oracle: closed = frequent with no frequent proper super-sequence of equal
// support.
std::map<Pattern, uint64_t> OracleClosed(const UnitDatabase& units,
                                         uint64_t min_sup) {
  auto all = OracleFrequent(units, min_sup);
  std::map<Pattern, uint64_t> out;
  for (const auto& [p, sup] : all) {
    bool closed = true;
    for (const auto& [q, qsup] : all) {
      if (q.size() <= p.size() || qsup != sup) continue;
      if (p.IsSubsequenceOf(q)) {
        closed = false;
        break;
      }
    }
    if (closed) out[p] = sup;
  }
  return out;
}

TEST(ClosedSequentialTest, HandExample) {
  // Classic: "c a a b c", "a b c b", "a b b c a" with min_sup 2.
  SequenceDatabase db = MakeDb({"c a a b c", "a b c b", "a b b c a"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  ClosedSeqMinerOptions options;
  options.min_support = 2;
  auto got = ToMap(MineClosedSequential(units, options));
  auto want = OracleClosed(units, 2);
  EXPECT_EQ(got, want);
  // <a, b> is absorbed by <a, b, c> (both support 3).
  EXPECT_EQ(got.count(P(db, "a b")), 0u);
  EXPECT_EQ(got.at(P(db, "a b c")), 3u);
}

TEST(ClosedSequentialTest, SingleTraceEmitsOnlyMaximal) {
  SequenceDatabase db = MakeDb({"a b c"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  ClosedSeqMinerOptions options;
  options.min_support = 1;
  auto got = ToMap(MineClosedSequential(units, options));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.begin()->first, P(db, "a b c"));
}

TEST(ClosedSequentialTest, MatchesOracleOnRandomDatabases) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SequenceDatabase db = RandomDb(seed + 100, 6, 8, 4);
    UnitDatabase units = UnitDatabase::WholeSequences(db);
    for (uint64_t min_sup : {1u, 2u, 3u}) {
      ClosedSeqMinerOptions options;
      options.min_support = min_sup;
      auto got = ToMap(MineClosedSequential(units, options));
      auto want = OracleClosed(units, min_sup);
      EXPECT_EQ(got, want) << "seed=" << seed << " min_sup=" << min_sup;
    }
  }
}

TEST(ClosedSequentialTest, BackScanDoesNotChangeOutput) {
  for (uint64_t seed = 200; seed <= 210; ++seed) {
    SequenceDatabase db = RandomDb(seed, 7, 9, 4);
    UnitDatabase units = UnitDatabase::WholeSequences(db);
    ClosedSeqMinerOptions with, without;
    with.min_support = 2;
    without.min_support = 2;
    without.backscan_pruning = false;
    auto a = ToMap(MineClosedSequential(units, with));
    auto b = ToMap(MineClosedSequential(units, without));
    EXPECT_EQ(a, b) << "seed=" << seed;
  }
}

TEST(ClosedSequentialTest, BackScanPrunesNodes) {
  SequenceDatabase db = RandomDb(77, 20, 12, 3);
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  ClosedSeqMinerOptions with, without;
  with.min_support = 2;
  without.min_support = 2;
  without.backscan_pruning = false;
  SeqMinerStats sw, swo;
  MineClosedSequential(units, with, &sw);
  MineClosedSequential(units, without, &swo);
  EXPECT_LT(sw.nodes_visited, swo.nodes_visited);
}

// ---------------------------------------------------------------------------
// Generator miner.

std::map<Pattern, uint64_t> OracleGenerators(const UnitDatabase& units,
                                             uint64_t min_sup) {
  auto all = OracleFrequent(units, min_sup);
  std::map<Pattern, uint64_t> out;
  for (const auto& [p, sup] : all) {
    bool generator = true;
    // Check all proper subsequences via single deletions (sufficient by
    // support monotonicity).
    for (size_t k = 0; k < p.size() && generator; ++k) {
      Pattern d = p.Erase(k);
      uint64_t dsup =
          d.empty() ? units.size() : OracleSupport(units, d);
      if (dsup == sup) generator = false;
    }
    if (generator) out[p] = sup;
  }
  return out;
}

TEST(GeneratorMinerTest, HandExample) {
  SequenceDatabase db = MakeDb({"a b c", "a b c", "b c a"});
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  GeneratorMinerOptions options;
  options.min_support = 2;
  auto got = ToMap(MineSequentialGenerators(units, options));
  auto want = OracleGenerators(units, 2);
  EXPECT_EQ(got, want);
  // <b, c> has support 3, same as <b> and <c> -> not a generator.
  EXPECT_EQ(got.count(P(db, "b c")), 0u);
}

TEST(GeneratorMinerTest, MatchesOracleOnRandomDatabases) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SequenceDatabase db = RandomDb(seed + 300, 6, 8, 4);
    UnitDatabase units = UnitDatabase::WholeSequences(db);
    for (uint64_t min_sup : {1u, 2u}) {
      GeneratorMinerOptions options;
      options.min_support = min_sup;
      auto got = ToMap(MineSequentialGenerators(units, options));
      auto want = OracleGenerators(units, min_sup);
      EXPECT_EQ(got, want) << "seed=" << seed << " min_sup=" << min_sup;
    }
  }
}

TEST(GeneratorMinerTest, EveryFrequentPatternDominatedByGenerator) {
  // Structural property: for every frequent pattern there is a generator
  // subsequence with the same support.
  SequenceDatabase db = RandomDb(55, 8, 8, 4);
  UnitDatabase units = UnitDatabase::WholeSequences(db);
  auto all = OracleFrequent(units, 2);
  GeneratorMinerOptions options;
  options.min_support = 2;
  auto gens = ToMap(MineSequentialGenerators(units, options));
  for (const auto& [p, sup] : all) {
    bool covered = false;
    for (const auto& [g, gsup] : gens) {
      if (gsup == sup && g.IsSubsequenceOf(p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << p.ToString();
  }
}

}  // namespace
}  // namespace specmine
