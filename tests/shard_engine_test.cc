// The sharded-equivalence property: a session opened from a .smdbset
// mines byte-identically to one opened from the equivalent single .smdb —
// for the regular (merged) tasks and for the two-phase MineSharded path,
// across randomized corpora, shard-size bounds, thresholds, and thread
// counts.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/support/random.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// A reproducible random corpus: \p num_traces traces of up to
// \p max_length events over an alphabet of \p alphabet names.
SequenceDatabase RandomDb(uint64_t seed, size_t num_traces,
                          size_t max_length, size_t alphabet) {
  Rng rng(seed);
  SequenceDatabaseBuilder builder;
  for (size_t t = 0; t < num_traces; ++t) {
    std::string line;
    const size_t len = rng.Uniform(max_length + 1);
    for (size_t k = 0; k < len; ++k) {
      line += "ev" + std::to_string(rng.Uniform(alphabet)) + " ";
    }
    builder.AddTraceFromString(line);
  }
  return builder.Build();
}

struct EnginePair {
  Engine single;
  Engine sharded;
};

// Packs \p db both ways and opens both sessions.
EnginePair MakePair(const SequenceDatabase& db, const std::string& stem,
                    uint64_t shard_bytes) {
  const std::string smdb = TempPath(stem + ".smdb");
  const std::string smdbset = TempPath(stem + ".smdbset");
  EXPECT_TRUE(WriteBinaryDatabaseFile(db, smdb).ok());
  ShardWriterOptions options;
  options.shard_bytes = shard_bytes;
  EXPECT_TRUE(WriteShardedDatabase(db, smdbset, options).ok());
  Result<Engine> single = Engine::FromBinaryFile(smdb);
  Result<Engine> sharded = Engine::FromShardSet(smdbset);
  EXPECT_TRUE(single.ok()) << single.status().ToString();
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  return EnginePair{single.TakeValueOrDie(), sharded.TakeValueOrDie()};
}

TEST(ShardEngineTest, FromShardSetExposesTheShardStructure) {
  SequenceDatabase db = RandomDb(7, 30, 10, 6);
  EnginePair pair = MakePair(db, "expose", 400);
  EXPECT_FALSE(pair.single.sharded());
  EXPECT_TRUE(pair.sharded.sharded());
  EXPECT_FALSE(pair.sharded.memory_mapped());  // Merged db is materialized.
  EXPECT_GT(pair.sharded.shard_set().num_shards(), 1u);
  EXPECT_EQ(pair.sharded.database().size(), db.size());
  EXPECT_EQ(pair.sharded.database().TotalEvents(), db.TotalEvents());
}

// Every regular task over the merged session matches the single-file one.
TEST(ShardEngineTest, MergedTasksAreByteIdenticalToSingleFile) {
  SequenceDatabase db = RandomDb(11, 40, 12, 8);
  EnginePair pair = MakePair(db, "merged_tasks", 500);
  const EventDictionary& dict_s = pair.single.database().dictionary();
  const EventDictionary& dict_m = pair.sharded.database().dictionary();

  ClosedTask closed;
  closed.options.min_support = 3;
  Result<PatternSet> c_single = pair.single.CollectPatterns(closed);
  Result<PatternSet> c_sharded = pair.sharded.CollectPatterns(closed);
  ASSERT_TRUE(c_single.ok());
  ASSERT_TRUE(c_sharded.ok());
  EXPECT_GT(c_single->size(), 0u);
  EXPECT_EQ(c_single->ToString(dict_s), c_sharded->ToString(dict_m));

  RulesTask rules;
  rules.options.min_s_support = 3;
  rules.options.min_confidence = 0.7;
  Result<RuleSet> r_single = pair.single.CollectRules(rules);
  Result<RuleSet> r_sharded = pair.sharded.CollectRules(rules);
  ASSERT_TRUE(r_single.ok());
  ASSERT_TRUE(r_sharded.ok());
  ASSERT_EQ(r_single->size(), r_sharded->size());
  for (size_t i = 0; i < r_single->size(); ++i) {
    EXPECT_EQ((*r_single)[i].ToString(dict_s),
              (*r_sharded)[i].ToString(dict_m));
  }
}

// The core property: MineSharded == the single-pass full miner — same
// patterns, same supports, same emission order — over randomized corpora,
// shard bounds, thresholds and thread counts.
TEST(ShardEngineTest, MineShardedIsByteIdenticalToSinglePass) {
  struct Case {
    uint64_t seed;
    size_t traces, max_len, alphabet;
    uint64_t shard_bytes;
    uint64_t min_support;
    size_t max_length;
    size_t threads;
  };
  const std::vector<Case> cases = {
      {1, 30, 10, 5, 300, 2, 0, 1},
      {2, 40, 12, 8, 500, 3, 5, 3},
      {3, 25, 8, 3, 250, 4, 0, 2},
      {4, 50, 9, 10, 400, 2, 4, 1},
      {5, 12, 14, 4, 10'000'000, 3, 0, 3},  // Single shard.
      {6, 35, 11, 6, 260, 5, 6, 2},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("seed " + std::to_string(c.seed));
    SequenceDatabase db =
        RandomDb(c.seed, c.traces, c.max_len, c.alphabet);
    EnginePair pair =
        MakePair(db, "prop" + std::to_string(c.seed), c.shard_bytes);

    FullPatternsTask task;
    task.options.min_support = c.min_support;
    task.options.max_length = c.max_length;
    task.options.num_threads = c.threads;

    CollectingPatternSink single_sink;
    Result<RunReport> single = pair.single.Mine(task, single_sink);
    ASSERT_TRUE(single.ok()) << single.status().ToString();

    CollectingPatternSink sharded_sink;
    Result<RunReport> sharded = pair.sharded.MineSharded(task, sharded_sink);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    // Same patterns with the same supports, in the same order (ToString
    // renders both, line by line, in emission order).
    EXPECT_GT(single->patterns_emitted, 0u);  // Not vacuously identical.
    EXPECT_EQ(
        single_sink.set().ToString(pair.single.database().dictionary()),
        sharded_sink.set().ToString(pair.sharded.database().dictionary()));
    EXPECT_EQ(single->patterns_emitted, sharded->patterns_emitted);
  }
}

// max_patterns cuts the sharded delivery at exactly the pattern the
// single-pass scan stops at (same order ⇒ same prefix).
TEST(ShardEngineTest, MaxPatternsTruncatesAtTheSamePattern) {
  SequenceDatabase db = RandomDb(21, 40, 12, 6);
  EnginePair pair = MakePair(db, "truncate", 400);
  FullPatternsTask task;
  task.options.min_support = 2;
  task.options.max_patterns = 17;

  CollectingPatternSink single_sink;
  Result<RunReport> single = pair.single.Mine(task, single_sink);
  ASSERT_TRUE(single.ok());
  CollectingPatternSink sharded_sink;
  Result<RunReport> sharded = pair.sharded.MineSharded(task, sharded_sink);
  ASSERT_TRUE(sharded.ok());
  EXPECT_TRUE(single->truncated);
  EXPECT_TRUE(sharded->truncated);
  EXPECT_EQ(
      single_sink.set().ToString(pair.single.database().dictionary()),
      sharded_sink.set().ToString(pair.sharded.database().dictionary()));
}

TEST(ShardEngineTest, ShardIndexesAreCachedAcrossCalls) {
  SequenceDatabase db = RandomDb(31, 30, 10, 5);
  EnginePair pair = MakePair(db, "cache", 300);
  FullPatternsTask task;
  task.options.min_support = 2;
  CollectingPatternSink sink1, sink2;
  Result<RunReport> first = pair.sharded.MineSharded(task, sink1);
  Result<RunReport> second = pair.sharded.MineSharded(task, sink2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->index_build_seconds, 0.0);
  EXPECT_EQ(second->index_build_seconds, 0.0);  // Cached per-shard indexes.
}

// Degraded mode end to end: one corrupted shard, quarantine policy, and
// the session mines the healthy subset while the report says what was
// lost.
TEST(ShardEngineTest, QuarantinedShardIsReportedAndMiningSucceeds) {
  SequenceDatabase db = RandomDb(61, 40, 10, 6);
  const std::string smdbset = TempPath("quarantine.smdbset");
  ShardWriterOptions options;
  options.shard_bytes = 400;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, options).ok());
  std::string shard0;
  size_t shards_total = 0;
  {
    Result<ShardedDatabase> probe = ShardedDatabase::Open(smdbset);
    ASSERT_TRUE(probe.ok());
    ASSERT_GT(probe->num_shards(), 1u);
    shard0 = probe->shard_path(0);
    shards_total = probe->num_shards();
  }
  {  // Corrupt shard 0 beyond recognition.
    std::ofstream f(shard0, std::ios::binary | std::ios::trunc);
    f << "not an smdb";
  }

  // Default policy: the session refuses to open.
  ASSERT_FALSE(Engine::FromShardSet(smdbset).ok());

  SetOpenOptions open_options;
  open_options.policy = ShardFailurePolicy::kQuarantine;
  Result<Engine> engine = Engine::FromShardSet(smdbset, open_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->shard_set().num_shards(), shards_total - 1);

  FullPatternsTask task;
  task.options.min_support = 2;
  CollectingPatternSink sink;
  Result<RunReport> run = engine->MineSharded(task, sink);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->shards_total, shards_total);
  EXPECT_EQ(run->shards_quarantined, 1u);
  ASSERT_EQ(run->shard_errors.size(), 1u);
  EXPECT_NE(run->shard_errors[0].find("shard 0"), std::string::npos);
  EXPECT_NE(run->ToString().find("quarantined=1"), std::string::npos);

  // The degraded output equals mining the healthy subset directly — i.e.
  // thresholds rescale to the surviving traces, nothing silently counts
  // the lost shard.
  Result<Engine> healthy = Engine::Create(engine->shard_set().Merge());
  ASSERT_TRUE(healthy.ok());
  CollectingPatternSink expected;
  ASSERT_TRUE(healthy->Mine(task, expected).ok());
  EXPECT_EQ(
      sink.set().ToString(engine->database().dictionary()),
      expected.set().ToString(healthy->database().dictionary()));
}

TEST(ShardEngineTest, MineShardedOnUnshardedSessionIsAnError) {
  SequenceDatabase db = RandomDb(41, 10, 8, 4);
  Result<Engine> engine = Engine::Create(db);
  ASSERT_TRUE(engine.ok());
  FullPatternsTask task;
  task.options.min_support = 2;
  CollectingPatternSink sink;
  Result<RunReport> r = engine->MineSharded(task, sink);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardEngineTest, InvalidOptionsAreRejectedBeforeMining) {
  SequenceDatabase db = RandomDb(51, 10, 8, 4);
  EnginePair pair = MakePair(db, "invalid", 300);
  FullPatternsTask task;
  task.options.min_support = 0;  // Validate() rejects this.
  CollectingPatternSink sink;
  Result<RunReport> r = pair.sharded.MineSharded(task, sink);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace specmine
