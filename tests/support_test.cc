// Unit tests for src/support: Status/Result, RNG & samplers, strings,
// stopwatch, thread pool error capture, fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/fault_injection.h"
#include "src/support/random.h"
#include "src/support/status.h"
#include "src/support/stopwatch.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace specmine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("pe").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("int").code(), StatusCode::kInternal);
  Status s = Status::InvalidArgument("threshold must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "threshold must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: threshold must be positive");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::NotFound("x"));
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ReturnNotOkMacroTest, PropagatesErrors) {
  auto fails = []() { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SPECMINE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(1234567), b(1234567), c(7654321);
  uint64_t a1 = a.Next();
  uint64_t a2 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_EQ(a2, b.Next());
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, c.Next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99), b(99), c(100);
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next64();
    uint64_t vb = b.Next64();
    uint64_t vc = c.Next64();
    all_equal = all_equal && (va == vb);
    any_diff_c = any_diff_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(21);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanIsClose) {
  Rng rng(11);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(RngTest, GeometricMeanIsClose) {
  Rng rng(13);
  const double p = 0.25;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Geometric(p);
  // Mean of failures-before-success is (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.25);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  Rng rng(23);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ZipfSamplerTest, SkewFavoursLowRanks) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(StopwatchTest, ReportsNonNegativeMonotonicTime) {
  Stopwatch sw;
  int64_t a = sw.ElapsedNanos();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  int64_t b = sw.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedNanos(), b);
}

TEST(StringsTest, SplitAndTrimDropsEmptyFields) {
  auto out = SplitAndTrim("  a  b   c ", ' ');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "b");
  EXPECT_EQ(out[2], "c");
  EXPECT_TRUE(SplitAndTrim("", ' ').empty());
  EXPECT_TRUE(SplitAndTrim("   ", ' ').empty());
}

TEST(StringsTest, SplitOnCommas) {
  auto out = SplitAndTrim("x, y,,z", ',');
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "x");
  EXPECT_EQ(out[1], "y");
  EXPECT_EQ(out[2], "z");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("  \t "), "");
  EXPECT_EQ(StripWhitespace("no-op"), "no-op");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("TxManager.begin", "TxManager"));
  EXPECT_FALSE(StartsWith("Tx", "TxManager"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  Status s = ThreadPool::ParallelFor(4, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// The regression the fault-tolerance work pins down: an exception escaping
// a task body (a misbehaving user callback on a worker thread) becomes a
// kInternal Status from the fan-out instead of std::terminate.
TEST(ThreadPoolTest, TaskExceptionBecomesInternalStatus) {
  Status s = ThreadPool::ParallelFor(3, 16, [](size_t i) {
    if (i == 7) throw std::runtime_error("sink blew up");
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("sink blew up"), std::string::npos);
}

TEST(ThreadPoolTest, TakeErrorClearsAfterReporting) {
  ThreadPool pool(2);
  Status first = pool.ParallelFor(4, [](size_t i) {
    if (i == 0) throw std::runtime_error("once");
  });
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  Status second = pool.ParallelFor(4, [](size_t) {});
  EXPECT_TRUE(second.ok());  // The earlier error does not leak forward.
}

TEST(ThreadPoolTest, NonExceptionThrowIsStillCaught) {
  Status s = ThreadPool::ParallelFor(2, 4, [](size_t i) {
    if (i == 1) throw 42;  // Not derived from std::exception.
  });
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(FaultInjectionTest, UnarmedSiteIsFree) {
  EXPECT_TRUE(CheckFault("support_test.nowhere").ok());
}

TEST(FaultInjectionTest, CountdownFiresOnTheNthCall) {
  ScopedFault fault("support_test.site", 2, Status::IOError("injected"));
  EXPECT_TRUE(CheckFault("support_test.site").ok());
  EXPECT_TRUE(CheckFault("support_test.site").ok());
  Status hit = CheckFault("support_test.site");
  ASSERT_FALSE(hit.ok());
  EXPECT_EQ(hit.code(), StatusCode::kIOError);
  EXPECT_NE(hit.message().find("injected"), std::string::npos);
}

TEST(FaultInjectionTest, DisarmAllRestoresTheFastPath) {
  FaultInjector::Instance().Arm("support_test.other", 0,
                                Status::IOError("boom"));
  FaultInjector::Instance().DisarmAll();
  EXPECT_TRUE(CheckFault("support_test.other").ok());
}

TEST(FaultInjectionTest, ArmedThrowSurfacesThroughThePool) {
  FaultInjector::Instance().ArmThrow("thread_pool.task", 0);
  Status s = ThreadPool::ParallelFor(2, 8, [](size_t) {});
  FaultInjector::Instance().DisarmAll();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace specmine
