// Unit tests for src/twoevent: the Perracotta-style template matchers and
// pairwise miner.

#include <gtest/gtest.h>

#include "src/twoevent/perracotta.h"

namespace specmine {
namespace {

SequenceDatabase MakeDb(const std::vector<std::string>& traces) {
  SequenceDatabaseBuilder db;
  for (const auto& t : traces) db.AddTraceFromString(t);
  return db.Build();
}

// Helper: check a template against the projection of a single trace.
bool Matches(const std::string& trace, PairTemplate t) {
  SequenceDatabase db = MakeDb({trace, "a b"});  // Ensure both interned.
  EventId a = db.dictionary().Lookup("a");
  EventId b = db.dictionary().Lookup("b");
  return MatchesTemplate(db[0], a, b, t);
}

TEST(TemplateTest, ResponseAcceptsNoTrailingCause) {
  EXPECT_TRUE(Matches("x y", PairTemplate::kResponse));     // Empty proj.
  EXPECT_TRUE(Matches("b b", PairTemplate::kResponse));
  EXPECT_TRUE(Matches("a b", PairTemplate::kResponse));
  EXPECT_TRUE(Matches("a a b", PairTemplate::kResponse));
  EXPECT_TRUE(Matches("b a b a b", PairTemplate::kResponse));
  EXPECT_FALSE(Matches("a b a", PairTemplate::kResponse));
  EXPECT_FALSE(Matches("a", PairTemplate::kResponse));
}

TEST(TemplateTest, AlternationStrict) {
  EXPECT_TRUE(Matches("a b a b", PairTemplate::kAlternation));
  EXPECT_TRUE(Matches("x a y b", PairTemplate::kAlternation));
  EXPECT_FALSE(Matches("a a b", PairTemplate::kAlternation));
  EXPECT_FALSE(Matches("b a b", PairTemplate::kAlternation));
  EXPECT_FALSE(Matches("a b a", PairTemplate::kAlternation));
  EXPECT_TRUE(Matches("x y", PairTemplate::kAlternation));  // Empty.
}

TEST(TemplateTest, MultiEffect) {
  // (ab+)*: one cause, many effects.
  EXPECT_TRUE(Matches("a b b a b", PairTemplate::kMultiEffect));
  EXPECT_FALSE(Matches("a a b", PairTemplate::kMultiEffect));
  EXPECT_FALSE(Matches("b a b", PairTemplate::kMultiEffect));
}

TEST(TemplateTest, MultiCause) {
  // (a+b)*: many causes, one effect.
  EXPECT_TRUE(Matches("a a b a b", PairTemplate::kMultiCause));
  EXPECT_FALSE(Matches("a b b", PairTemplate::kMultiCause));
  EXPECT_FALSE(Matches("b a b", PairTemplate::kMultiCause));
}

TEST(TemplateTest, EffectFirstAllowsPrefix) {
  EXPECT_TRUE(Matches("b a b a b", PairTemplate::kEffectFirst));
  EXPECT_TRUE(Matches("b b", PairTemplate::kEffectFirst));
  EXPECT_FALSE(Matches("b a a b", PairTemplate::kEffectFirst));
}

TEST(TemplateTest, CauseFirst) {
  EXPECT_TRUE(Matches("a b a a b b", PairTemplate::kCauseFirst));
  EXPECT_FALSE(Matches("b a b", PairTemplate::kCauseFirst));
  EXPECT_FALSE(Matches("a b a", PairTemplate::kCauseFirst));
}

TEST(TemplateTest, OneCauseOneEffect) {
  EXPECT_TRUE(Matches("b a b b", PairTemplate::kOneCause));
  EXPECT_FALSE(Matches("b a a b", PairTemplate::kOneCause));
  EXPECT_TRUE(Matches("b a a b", PairTemplate::kOneEffect));
  EXPECT_FALSE(Matches("b a b b", PairTemplate::kOneEffect));
}

TEST(TemplateTest, HierarchyAlternationImpliesAll) {
  // Any projection matching Alternation matches every other template.
  for (const char* trace : {"a b", "a b a b", "x a y b a b"}) {
    for (PairTemplate t :
         {PairTemplate::kResponse, PairTemplate::kMultiEffect,
          PairTemplate::kMultiCause, PairTemplate::kEffectFirst,
          PairTemplate::kCauseFirst, PairTemplate::kOneCause,
          PairTemplate::kOneEffect}) {
      ASSERT_TRUE(Matches(trace, PairTemplate::kAlternation)) << trace;
      EXPECT_TRUE(Matches(trace, t))
          << trace << " should match " << PairTemplateName(t);
    }
  }
}

TEST(PerracottaTest, MinesLockUnlockAlternation) {
  SequenceDatabase db = MakeDb({
      "lock unlock lock unlock",
      "lock unlock",
      "x lock y unlock z",
  });
  PerracottaOptions options;
  options.min_satisfaction = 1.0;
  std::vector<TwoEventRule> rules = MinePerracotta(db, options);
  EventId lock = db.dictionary().Lookup("lock");
  EventId unlock = db.dictionary().Lookup("unlock");
  bool found = false;
  for (const TwoEventRule& r : rules) {
    if (r.cause == lock && r.effect == unlock) {
      found = true;
      EXPECT_EQ(r.strongest, PairTemplate::kAlternation);
      EXPECT_EQ(r.relevant_traces, 3u);
      EXPECT_DOUBLE_EQ(r.satisfaction(), 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PerracottaTest, SatisfactionThresholdFilters) {
  SequenceDatabase db = MakeDb({
      "open close",
      "open close",
      "open",  // Violation: open never closed.
  });
  PerracottaOptions strict;
  strict.min_satisfaction = 1.0;
  EventId open = db.dictionary().Lookup("open");
  EventId close = db.dictionary().Lookup("close");
  bool found_strict = false;
  for (const TwoEventRule& r : MinePerracotta(db, strict)) {
    if (r.cause == open && r.effect == close) found_strict = true;
  }
  EXPECT_FALSE(found_strict);
  PerracottaOptions lax;
  lax.min_satisfaction = 0.6;
  bool found_lax = false;
  for (const TwoEventRule& r : MinePerracotta(db, lax)) {
    if (r.cause == open && r.effect == close) {
      found_lax = true;
      EXPECT_NEAR(r.satisfaction(), 2.0 / 3.0, 1e-12);
    }
  }
  EXPECT_TRUE(found_lax);
}

TEST(PerracottaTest, MinRelevantTracesFilters) {
  SequenceDatabase db = MakeDb({"a b", "x y", "x y"});
  PerracottaOptions options;
  options.min_satisfaction = 1.0;
  options.min_relevant_traces = 2;
  EventId a = db.dictionary().Lookup("a");
  for (const TwoEventRule& r : MinePerracotta(db, options)) {
    EXPECT_NE(r.cause, a) << "pair with one relevant trace kept";
  }
}

TEST(PerracottaTest, ToStringRendersNames) {
  SequenceDatabase db = MakeDb({"a b"});
  TwoEventRule r;
  r.cause = db.dictionary().Lookup("a");
  r.effect = db.dictionary().Lookup("b");
  r.strongest = PairTemplate::kAlternation;
  r.relevant_traces = 2;
  r.satisfying_traces = 2;
  std::string s = r.ToString(db.dictionary());
  EXPECT_NE(s.find("a -> b"), std::string::npos);
  EXPECT_NE(s.find("Alternation"), std::string::npos);
}

TEST(PairTemplateNameTest, AllNamed) {
  EXPECT_STREQ(PairTemplateName(PairTemplate::kResponse), "Response");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kAlternation), "Alternation");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kMultiEffect), "MultiEffect");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kMultiCause), "MultiCause");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kEffectFirst), "EffectFirst");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kCauseFirst), "CauseFirst");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kOneCause), "OneCause");
  EXPECT_STREQ(PairTemplateName(PairTemplate::kOneEffect), "OneEffect");
}

}  // namespace
}  // namespace specmine
