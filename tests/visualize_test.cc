// Tests for the text visualization module (future-work item: a tool to
// navigate and visualize mined specifications).

#include <gtest/gtest.h>

#include "src/specmine/visualize.h"

namespace specmine {
namespace {

TEST(MscChartTest, LifelinesDerivedFromClassPrefixes) {
  EventDictionary dict;
  Pattern p{dict.Intern("TxManager.begin"), dict.Intern("XidFactory.newXid"),
            dict.Intern("TxManager.commit")};
  std::string chart = RenderMscChart(p, dict);
  // Header names both lifelines once.
  EXPECT_NE(chart.find("TxManager"), std::string::npos);
  EXPECT_NE(chart.find("XidFactory"), std::string::npos);
  // Rows list the method names in order.
  size_t begin_pos = chart.find("1. begin");
  size_t newxid_pos = chart.find("2. newXid");
  size_t commit_pos = chart.find("3. commit");
  ASSERT_NE(begin_pos, std::string::npos);
  ASSERT_NE(newxid_pos, std::string::npos);
  ASSERT_NE(commit_pos, std::string::npos);
  EXPECT_LT(begin_pos, newxid_pos);
  EXPECT_LT(newxid_pos, commit_pos);
  // Each event row marks exactly one lifeline.
  size_t stars = 0;
  for (char c : chart) stars += (c == '*') ? 1 : 0;
  EXPECT_EQ(stars, 3u);
}

TEST(MscChartTest, EventsWithoutDotGetGlobalLifeline) {
  EventDictionary dict;
  Pattern p{dict.Intern("lock"), dict.Intern("unlock")};
  std::string chart = RenderMscChart(p, dict);
  EXPECT_NE(chart.find("<global>"), std::string::npos);
  EXPECT_NE(chart.find("1. lock"), std::string::npos);
  EXPECT_NE(chart.find("2. unlock"), std::string::npos);
}

TEST(RuleCardTest, TwoColumnLayoutWithStats) {
  EventDictionary dict;
  Rule rule;
  rule.premise = Pattern{dict.Intern("XmlLoginCI.getConfEntry"),
                         dict.Intern("AuthenInfo.getName")};
  rule.consequent = Pattern{dict.Intern("ClientLoginMod.login"),
                            dict.Intern("ClientLoginMod.commit"),
                            dict.Intern("SecAssoc.getPrincipal")};
  rule.s_support = 60;
  rule.i_support = 170;
  rule.premise_points = 100;
  rule.satisfied_points = 95;
  std::string card = RenderRuleCard(rule, dict);
  EXPECT_NE(card.find("Premise"), std::string::npos);
  EXPECT_NE(card.find("Consequent"), std::string::npos);
  EXPECT_NE(card.find("XmlLoginCI.getConfEntry"), std::string::npos);
  EXPECT_NE(card.find("ClientLoginMod.commit"), std::string::npos);
  EXPECT_NE(card.find("s-sup=60"), std::string::npos);
  // Consequent longer than premise: empty premise cells render fine.
  size_t lines = 0;
  for (char c : card) lines += (c == '\n') ? 1 : 0;
  EXPECT_GE(lines, 3u + 2u);  // 3 body rows + borders.
}

TEST(LogChartTest, RendersSeriesAndLabels) {
  std::vector<ChartSeries> series = {
      {"Full", {1000.0, 100.0, 10.0}},
      {"Closed", {10.0, 5.0, 2.0}},
  };
  std::string chart =
      RenderLogChart("Figure 1(a)", {"0.1%", "0.2%", "0.3%"}, series, 8);
  EXPECT_NE(chart.find("Figure 1(a)"), std::string::npos);
  EXPECT_NE(chart.find("A = Full"), std::string::npos);
  EXPECT_NE(chart.find("B = Closed"), std::string::npos);
  EXPECT_NE(chart.find("0.1%"), std::string::npos);
  // The larger series must paint at least as many cells as the smaller.
  size_t a_cells = 0, b_cells = 0;
  for (char c : chart) {
    a_cells += (c == 'A') ? 1 : 0;
    b_cells += (c == 'B') ? 1 : 0;
  }
  EXPECT_GT(a_cells, 0u);
  EXPECT_GT(b_cells, 0u);
  EXPECT_GE(a_cells, b_cells);
}

TEST(LogChartTest, HandlesZerosAndSingleSeries) {
  std::vector<ChartSeries> series = {{"only", {0.0, 50.0}}};
  std::string chart = RenderLogChart("t", {"x0", "x1"}, series, 5);
  EXPECT_NE(chart.find("A = only"), std::string::npos);
  // Zero values paint nothing in their column group but do not crash.
  SUCCEED();
}

}  // namespace
}  // namespace specmine
