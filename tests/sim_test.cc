// Unit tests for src/sim: trace collector, transaction & security
// components, test-suite generators.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/itermine/qre_verifier.h"
#include "src/sim/test_suite.h"

namespace specmine {
namespace {

using sim::Figure4Pattern;
using sim::Figure5Consequent;
using sim::Figure5Premise;

TEST(TraceCollectorTest, CollectsPerTraceEvents) {
  TraceCollector collector;
  collector.BeginTrace();
  collector.Enter("A.f");
  collector.Enter("B.g");
  collector.EndTrace();
  collector.BeginTrace();
  collector.Enter("A.f");
  collector.EndTrace();
  SequenceDatabase db = collector.TakeDatabase();
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].size(), 2u);
  EXPECT_EQ(db[1].size(), 1u);
  EXPECT_EQ(db.dictionary().size(), 2u);
}

TEST(TraceCollectorTest, DropsEmptyTracesAndImplicitBegin) {
  TraceCollector collector;
  collector.BeginTrace();
  collector.EndTrace();  // Empty: dropped.
  collector.Enter("X.y");  // Implicit begin.
  SequenceDatabase db = collector.TakeDatabase();
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 1u);
}

Pattern NamesToPattern(const SequenceDatabase& db,
                       const std::vector<std::string>& names) {
  Pattern p;
  for (const auto& n : names) {
    EventId id = db.dictionary().Lookup(n);
    EXPECT_NE(id, kInvalidEvent) << n;
    p = p.Extend(id);
  }
  return p;
}

TEST(TransactionComponentTest, CleanCommitEmitsFigure4Sequence) {
  TraceCollector collector;
  Rng rng(1);
  sim::TransactionScenarioOptions options;
  options.rollback_probability = 0.0;
  options.noise_probability = 0.0;
  collector.BeginTrace();
  EXPECT_TRUE(sim::RunTransactionScenario(&collector, &rng, options));
  SequenceDatabase db = collector.TakeDatabase();
  ASSERT_EQ(db.size(), 1u);
  const auto& want = Figure4Pattern();
  ASSERT_EQ(db[0].size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(db.dictionary().Name(db[0][i]), want[i]) << "position " << i;
  }
}

TEST(TransactionComponentTest, RollbackPathOmitsCommitChain) {
  TraceCollector collector;
  Rng rng(1);
  sim::TransactionScenarioOptions options;
  options.rollback_probability = 1.0;
  options.noise_probability = 0.0;
  collector.BeginTrace();
  EXPECT_FALSE(sim::RunTransactionScenario(&collector, &rng, options));
  SequenceDatabase db = collector.TakeDatabase();
  EXPECT_EQ(db.dictionary().Lookup("TxManager.commit"), kInvalidEvent);
  EXPECT_NE(db.dictionary().Lookup("TxManager.rollback"), kInvalidEvent);
  EXPECT_NE(db.dictionary().Lookup("TransactionImpl.rollback"),
            kInvalidEvent);
}

TEST(TransactionComponentTest, NoiseDoesNotBreakPatternInstances) {
  sim::TestSuiteOptions options;
  options.num_traces = 30;
  options.min_runs_per_trace = 2;
  options.max_runs_per_trace = 3;
  options.transaction.rollback_probability = 0.0;
  options.transaction.noise_probability = 0.5;
  SequenceDatabase db = sim::GenerateTransactionTraces(options);
  Pattern fig4 = NamesToPattern(db, Figure4Pattern());
  // Every run is a commit run: at least 2 instances per trace.
  uint64_t instances = CountInstances(fig4, db);
  EXPECT_GE(instances, 60u);
}

TEST(TransactionComponentTest, CommitRateFollowsProbability) {
  sim::TestSuiteOptions options;
  options.num_traces = 200;
  options.min_runs_per_trace = 1;
  options.max_runs_per_trace = 1;
  options.transaction.rollback_probability = 0.3;
  SequenceDatabase db = sim::GenerateTransactionTraces(options);
  size_t commits = 0;
  EventId commit_ev = db.dictionary().Lookup("TxManager.commit");
  ASSERT_NE(commit_ev, kInvalidEvent);
  for (EventSpan seq : db) {
    commits += std::count(seq.begin(), seq.end(), commit_ev) > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(commits) / 200.0, 0.7, 0.1);
}

TEST(SecurityComponentTest, SuccessfulAuthEmitsPremiseThenConsequent) {
  TraceCollector collector;
  Rng rng(2);
  sim::SecurityScenarioOptions options;
  options.login_failure_probability = 0.0;
  options.noise_probability = 0.0;
  collector.BeginTrace();
  EXPECT_TRUE(sim::RunAuthenticationScenario(&collector, &rng, options));
  SequenceDatabase db = collector.TakeDatabase();
  ASSERT_EQ(db.size(), 1u);
  std::vector<std::string> expected = Figure5Premise();
  for (const auto& n : Figure5Consequent()) expected.push_back(n);
  ASSERT_EQ(db[0].size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(db.dictionary().Name(db[0][i]), expected[i]) << i;
  }
}

TEST(SecurityComponentTest, FailedLoginStopsBeforeCommit) {
  TraceCollector collector;
  Rng rng(3);
  sim::SecurityScenarioOptions options;
  options.login_failure_probability = 1.0;
  options.noise_probability = 0.0;
  collector.BeginTrace();
  EXPECT_FALSE(sim::RunAuthenticationScenario(&collector, &rng, options));
  SequenceDatabase db = collector.TakeDatabase();
  EXPECT_NE(db.dictionary().Lookup("ClientLoginMod.login"), kInvalidEvent);
  EXPECT_NE(db.dictionary().Lookup("ClientLoginMod.abort"), kInvalidEvent);
  EXPECT_EQ(db.dictionary().Lookup("ClientLoginMod.commit"), kInvalidEvent);
  EXPECT_EQ(db.dictionary().Lookup("SecAssoc.getPrincipal"), kInvalidEvent);
}

TEST(TestSuiteTest, GeneratesRequestedTraceCounts) {
  sim::TestSuiteOptions options;
  options.num_traces = 25;
  SequenceDatabase txn = sim::GenerateTransactionTraces(options);
  SequenceDatabase sec = sim::GenerateSecurityTraces(options);
  EXPECT_EQ(txn.size(), 25u);
  EXPECT_EQ(sec.size(), 25u);
}

TEST(TestSuiteTest, DeterministicForSeed) {
  sim::TestSuiteOptions options;
  options.num_traces = 10;
  SequenceDatabase a = sim::GenerateTransactionTraces(options);
  SequenceDatabase b = sim::GenerateTransactionTraces(options);
  ASSERT_EQ(a.size(), b.size());
  for (SeqId s = 0; s < a.size(); ++s) EXPECT_EQ(a[s], b[s]);
  options.seed += 1;
  SequenceDatabase c = sim::GenerateTransactionTraces(options);
  bool any_diff = false;
  for (SeqId s = 0; s < a.size() && !any_diff; ++s) {
    any_diff = !(a[s] == c[s]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(TestSuiteTest, RunsPerTraceWithinBounds) {
  sim::TestSuiteOptions options;
  options.num_traces = 50;
  options.min_runs_per_trace = 2;
  options.max_runs_per_trace = 4;
  options.transaction.rollback_probability = 0.0;
  options.transaction.noise_probability = 0.0;
  SequenceDatabase db = sim::GenerateTransactionTraces(options);
  const size_t run_len = Figure4Pattern().size();
  for (EventSpan seq : db) {
    EXPECT_GE(seq.size(), 2 * run_len);
    EXPECT_LE(seq.size(), 4 * run_len);
    EXPECT_EQ(seq.size() % run_len, 0u);
  }
}

}  // namespace
}  // namespace specmine
