// Tests for the server's HTTP message layer: the incremental request
// parser (framing, limits, pipelining), the response serializer, and the
// exhaustive Status -> HTTP mapping every handler routes errors through.

#include "src/server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace specmine {
namespace {

using State = HttpRequestParser::State;

State FeedAll(HttpRequestParser& parser, std::string_view data,
              size_t* leftover = nullptr) {
  size_t consumed = 0;
  State state = parser.Feed(data, &consumed);
  if (leftover != nullptr) *leftover = data.size() - consumed;
  return state;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
  EXPECT_TRUE(request.KeepAlive());
}

TEST(HttpParserTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "POST /mine/patterns HTTP/1.1\r\n"
                    "Content-Length: 11\r\n\r\n"
                    "{\"a\": true}"),
            State::kComplete);
  EXPECT_EQ(parser.request().body, "{\"a\": true}");
}

TEST(HttpParserTest, ReassemblesAcrossArbitrarySplits) {
  const std::string wire =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\nX-A: b\r\n\r\nhello";
  // Any byte-level split must produce the same parse (the connection loop
  // feeds whatever the socket returns).
  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpRequestParser parser;
    size_t consumed = 0;
    State first = parser.Feed(std::string_view(wire).substr(0, split),
                              &consumed);
    ASSERT_EQ(consumed, split);
    if (first == State::kComplete) {
      ASSERT_EQ(split, wire.size());
      break;
    }
    ASSERT_EQ(first, State::kNeedMore);
    ASSERT_EQ(FeedAll(parser, std::string_view(wire).substr(split)),
              State::kComplete)
        << "split at " << split;
    EXPECT_EQ(parser.request().body, "hello");
    EXPECT_EQ(parser.request().headers.size(), 2u);
  }
}

TEST(HttpParserTest, PipelinedKeepAliveRequestsLeaveTheTail) {
  HttpRequestParser parser;
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  size_t consumed = 0;
  ASSERT_EQ(parser.Feed(two, &consumed), State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_TRUE(parser.request().KeepAlive());
  // The second request's bytes are untouched; Reset + refeed parses it.
  parser.Reset();
  ASSERT_EQ(FeedAll(parser, std::string_view(two).substr(consumed)),
            State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_FALSE(parser.request().KeepAlive());
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  for (const char* wire :
       {"GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "GET  HTTP/1.1\r\n\r\n",
        "GE T /x HTTP/1.1\r\n\r\n"}) {
    HttpRequestParser parser;
    ASSERT_EQ(FeedAll(parser, wire), State::kError) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET / HTTP/2.0\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParserTest, MalformedHeaderIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\nno colon here\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, WhitespaceBeforeColonIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\nHost : x\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, BadContentLengthIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(
      FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n"),
      State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

// RFC 9112 §6.3: repeated Content-Length headers are a request-smuggling
// vector behind a proxy that frames by a different one — reject even
// when the values agree.
TEST(HttpParserTest, DuplicateContentLengthIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                    "Content-Length: 5\r\n\r\nhello"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ListValuedContentLengthIs400) {
  HttpRequestParser parser;
  ASSERT_EQ(
      FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello"),
      State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  // Rejected from the declared length alone — no body bytes are buffered.
  ASSERT_EQ(FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, BodyAtTheLimitIsAccepted) {
  HttpLimits limits;
  limits.max_body_bytes = 4;
  HttpRequestParser parser(limits);
  ASSERT_EQ(
      FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"),
      State::kComplete);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) {
    wire += "X-Padding-" + std::to_string(i) + ": aaaaaaaaaaaaaaaa\r\n";
  }
  wire += "\r\n";
  ASSERT_EQ(FeedAll(parser, wire), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, ChunkedEncodingIs501) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET / HTTP/1.0\r\n\r\n"), State::kComplete);
  EXPECT_FALSE(parser.request().KeepAlive());
  parser.Reset();
  ASSERT_EQ(FeedAll(parser,
                    "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.request().KeepAlive());
}

TEST(HttpParserTest, QueryStringIsStrippedByPath) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET /corpora?verbose=1 HTTP/1.1\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().target, "/corpora?verbose=1");
  EXPECT_EQ(parser.request().Path(), "/corpora");
}

TEST(HttpResponseTest, SerializesStatusHeadersAndBody) {
  HttpResponse response;
  response.status = 429;
  response.body = "{}";
  response.headers.emplace_back("Retry-After", "1");
  std::string wire = response.Serialize(/*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// The single Status -> HTTP mapping, pinned exhaustively: adding a
// StatusCode without deciding its HTTP face should fail here.
TEST(StatusToHttpTest, MapsEveryCode) {
  EXPECT_EQ(StatusToHttp(StatusCode::kOk), 200);
  EXPECT_EQ(StatusToHttp(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(StatusToHttp(StatusCode::kOutOfRange), 400);
  EXPECT_EQ(StatusToHttp(StatusCode::kNotFound), 404);
  EXPECT_EQ(StatusToHttp(StatusCode::kParseError), 422);
  EXPECT_EQ(StatusToHttp(StatusCode::kCancelled), 499);
  EXPECT_EQ(StatusToHttp(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(StatusToHttp(StatusCode::kIOError), 500);
  EXPECT_EQ(StatusToHttp(StatusCode::kInternal), 500);
}

TEST(StatusToHttpTest, ReasonPhrasesForEveryMappedStatus) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kParseError, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kIOError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(HttpReasonPhrase(StatusToHttp(code)), "Unknown")
        << StatusCodeName(code);
  }
}

}  // namespace
}  // namespace specmine
