// The backend-equivalence property: every miner produces byte-identical
// output — patterns, supports, rules, emission order — on the CSR, the
// bitmap, and the hybrid counting backends, across randomized databases,
// thresholds, thread counts, and the plain / sharded execution paths —
// and the lazy merged backend a sharded session answers merged-view
// queries through reproduces the eager-merge output exactly, including
// in quarantined-shard degraded mode. Plus the word-mask edge cases
// (sequence lengths straddling the 64-bit word boundary) and the
// adaptive chooser's dense/sparse/hybrid verdicts.

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/itermine/bitmap_projection.h"
#include "src/itermine/hybrid_index.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/generators.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/rulemine/rule_miner.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/support/random.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

SequenceDatabase RandomDb(uint64_t seed, size_t num_seqs, size_t max_len,
                          size_t alphabet) {
  Rng rng(seed);
  SequenceDatabaseBuilder db;
  for (size_t i = 0; i < alphabet; ++i) {
    db.mutable_dictionary()->Intern("e" + std::to_string(i));
  }
  for (size_t s = 0; s < num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(max_len);
    for (size_t k = 0; k < len; ++k) {
      seq.Append(static_cast<EventId>(rng.Uniform(alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

std::string Render(const PatternSet& set, const EventDictionary& dict) {
  return set.ToString(dict);
}

// ---------------------------------------------------------------------------
// Word-wise primitive edge cases: first/last/count with ranges that start,
// end, and straddle 64-bit word boundaries.

TEST(BitmapIndexTest, ScanPrimitivesHandleWordBoundaries) {
  // Bits set at 0, 63, 64, 65, 127, 128, 200.
  std::vector<uint64_t> row(4, 0);
  for (size_t bit : {0, 63, 64, 65, 127, 128, 200}) {
    row[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  const uint64_t* r = row.data();
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 0, 256), 0u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 1, 256), 63u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 64, 256), 64u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 66, 256), 127u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 129, 256), 200u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 201, 256), kNoBit);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 63, 63), kNoBit);  // Empty.
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 63, 64), 63u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 0, 63), 0u);
  // Limit masks a set bit away.
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 1, 63), kNoBit);

  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 256), 200u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 200), 128u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 128), 127u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 64), 63u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 63), 0u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 1, 63), kNoBit);  // Lo masks 0.
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 65, 65), kNoBit);  // Empty.
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 64, 65), 64u);

  EXPECT_EQ(BitmapIndex::CountInRange(r, 0, 256), 7u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 63, 66), 3u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 64, 64), 0u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 1, 63), 0u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 128, 256), 2u);
  EXPECT_TRUE(BitmapIndex::AnyInRange(r, 65, 66));
  EXPECT_FALSE(BitmapIndex::AnyInRange(r, 66, 127));
}

// Sequences of lengths 63 / 64 / 65 (and an event only in the last,
// partially-filled word): the unpadded layout's boundary masks must not
// leak bits across sequences.
TEST(BitmapIndexTest, WordBoundarySequenceLengths) {
  for (size_t len : {63u, 64u, 65u}) {
    SequenceDatabaseBuilder builder;
    builder.mutable_dictionary()->Intern("a");
    builder.mutable_dictionary()->Intern("b");
    builder.mutable_dictionary()->Intern("z");
    // Sequence 0: a at every position except the last, which holds z —
    // the "event only in the last word" shape for len 65.
    Sequence s0;
    for (size_t k = 0; k + 1 < len; ++k) s0.Append(0);
    s0.Append(2);
    builder.AddSequence(s0);
    // Sequence 1 starts mid-word: b everywhere.
    Sequence s1;
    for (size_t k = 0; k < len; ++k) s1.Append(1);
    builder.AddSequence(s1);
    SequenceDatabase db = builder.Build();
    BitmapIndex bitmap(db);
    PositionIndex csr(db);
    for (EventId ev = 0; ev < 3; ++ev) {
      EXPECT_EQ(bitmap.TotalCount(ev), csr.TotalCount(ev)) << "len=" << len;
      EXPECT_EQ(bitmap.SequenceCount(ev), csr.SequenceCount(ev))
          << "len=" << len;
      EXPECT_EQ(SingleEventInstancesBitmap(bitmap, ev),
                SingleEventInstances(csr, ev))
          << "len=" << len;
    }
    // The z occurrence sits in the last word of sequence 0; sequence 1's
    // b-run must not bleed into its range queries (and vice versa).
    CountingBackend bb(bitmap);
    EXPECT_TRUE(bb.AnyInRange(2, 0, static_cast<Pos>(len - 1),
                              static_cast<Pos>(len - 1)));
    EXPECT_FALSE(bb.AnyInRange(1, 0, 0, static_cast<Pos>(len - 1)));
    EXPECT_FALSE(bb.AnyInRange(0, 1, 0, static_cast<Pos>(len - 1)));
    // Projection parity on a pattern rooted in each sequence.
    for (EventId root : {EventId{0}, EventId{1}}) {
      InstanceList insts = SingleEventInstances(csr, root);
      Pattern p{root};
      ForwardExtensionMap csr_fwd = ForwardExtensions(csr, p, insts);
      ProjectionWorkspace ws;
      ForwardExtensionMap bitmap_fwd;
      ForwardExtensionsBitmap(bitmap, p, insts, &ws, &bitmap_fwd);
      ASSERT_EQ(csr_fwd.size(), bitmap_fwd.size()) << "len=" << len;
      auto it = bitmap_fwd.begin();
      for (const auto& [ev, il] : csr_fwd) {
        EXPECT_EQ(ev, it->first);
        EXPECT_EQ(il, it->second);
        ++it;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The adaptive chooser: dense corpora go vertical, sparse corpora stay on
// the CSR index (the acceptance pins of the auto mode).

TEST(BackendChooserTest, DensePicksBitmapSparsePicksCsr) {
  // Dense: 40 sequences x 60 events over 12 distinct names.
  SequenceDatabase dense = RandomDb(1, 40, 60, 12);
  EXPECT_EQ(ChooseBackendKind(dense), BackendKind::kBitmap);
  // Sparse AND tiny: the hybrid split can't amortize its arena, so the
  // CSR index wins (mean occurrences ~1, a few hundred events total).
  SequenceDatabase sparse = RandomDb(2, 30, 15, 500);
  EXPECT_EQ(ChooseBackendKind(sparse), BackendKind::kCsr);
  // Sparse but big: thousands of events over a wide alphabet — the
  // hybrid format keeps the rare tail as ID-lists instead of paying a
  // full bitmap row per event.
  SequenceDatabase wide = RandomDb(4, 300, 30, 3000);
  EXPECT_EQ(ChooseBackendKind(wide), BackendKind::kHybrid);
  // Empty databases default to CSR.
  EXPECT_EQ(ChooseBackendKind(SequenceDatabase()), BackendKind::kCsr);
}

// ---------------------------------------------------------------------------
// Projection-level equivalence on randomized databases: the dispatching
// overloads agree entry-for-entry between backends.

struct EquivParams {
  uint64_t seed;
  size_t num_seqs, max_len, alphabet;
};

class BackendEquivalenceTest : public ::testing::TestWithParam<EquivParams> {
};

TEST_P(BackendEquivalenceTest, ProjectionQueriesAgree) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  PositionIndex csr(db);
  BitmapIndex bitmap(db);
  HybridIndex hybrid(db);
  // Also a hybrid forced to keep a sparse tail on every corpus: a huge
  // cutoff pushes *all* events onto the ID-list side, so the sparse
  // scatter path is exercised even where auto-tuning would go all-dense.
  HybridIndex all_sparse(db, ~uint64_t{0});
  CountingBackend cb(csr);
  std::array<CountingBackend, 3> alts = {CountingBackend(bitmap),
                                         CountingBackend(hybrid),
                                         CountingBackend(all_sparse)};
  std::array<ProjectionWorkspace, 3> alt_ws;
  ProjectionWorkspace csr_ws;
  for (const CountingBackend& alt : alts) {
    ASSERT_EQ(cb.num_events(), alt.num_events());
  }
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    InstanceList insts = SingleEventInstances(cb, ev);
    for (const CountingBackend& alt : alts) {
      ASSERT_EQ(cb.TotalCount(ev), alt.TotalCount(ev)) << alt.name();
      ASSERT_EQ(cb.SequenceCount(ev), alt.SequenceCount(ev)) << alt.name();
      ASSERT_EQ(insts, SingleEventInstances(alt, ev)) << alt.name();
    }
    if (insts.empty()) continue;
    // Grow a couple of levels and compare the full projection at each.
    for (EventId second = 0; second < db.dictionary().size(); ++second) {
      Pattern pat = Pattern{ev}.Extend(second);
      InstanceList pat_insts = FindAllInstances(pat, db);
      if (pat_insts.empty()) continue;
      ForwardExtensionMap csr_fwd;
      ForwardExtensions(cb, pat, pat_insts, &csr_ws, &csr_fwd);
      const BackwardExtensionMap& csr_back =
          BackwardExtensions(cb, pat, pat_insts, &csr_ws);
      // Copy: the reference lives in the workspace.
      BackwardExtensionMap csr_back_copy;
      for (const auto& [e, ext] : csr_back) csr_back_copy.emplace_back(e, ext);
      for (size_t a = 0; a < alts.size(); ++a) {
        const CountingBackend& alt = alts[a];
        ForwardExtensionMap alt_fwd;
        ForwardExtensions(alt, pat, pat_insts, &alt_ws[a], &alt_fwd);
        ASSERT_EQ(csr_fwd.size(), alt_fwd.size())
            << alt.name() << " " << pat.ToString();
        auto it = alt_fwd.begin();
        for (const auto& [e, il] : csr_fwd) {
          ASSERT_EQ(e, it->first) << alt.name() << " " << pat.ToString();
          ASSERT_EQ(il, it->second) << alt.name() << " " << pat.ToString();
          ++it;
        }
        const BackwardExtensionMap& alt_back =
            BackwardExtensions(alt, pat, pat_insts, &alt_ws[a]);
        ASSERT_EQ(csr_back_copy.size(), alt_back.size())
            << alt.name() << " " << pat.ToString();
        auto bit = alt_back.begin();
        for (const auto& [e, ext] : csr_back_copy) {
          ASSERT_EQ(e, bit->first) << alt.name();
          ASSERT_EQ(ext.support, bit->second.support)
              << alt.name() << " " << pat.ToString();
          ASSERT_EQ(ext.all_adjacent, bit->second.all_adjacent)
              << alt.name() << " " << pat.ToString();
          ++bit;
        }
        // The QRE recount and the occurrence count agree with the oracles.
        ASSERT_EQ(CountInstances(alt, pat), CountInstances(pat, db))
            << alt.name();
        ASSERT_EQ(CountOccurrences(alt, pat), CountOccurrences(pat, db))
            << alt.name();
      }
    }
  }
}

// Full / closed / generator miners: byte-identical emission across
// backends x thresholds x thread counts.
TEST_P(BackendEquivalenceTest, MinersAreByteIdenticalAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const EventDictionary& dict = db.dictionary();
  // min_support 1 is omitted: the *full* pattern tree at support 1 grows
  // combinatorially on the larger corpora (equally on both backends) —
  // the low-threshold regime is covered by the smaller projection test.
  for (uint64_t min_sup : {2u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      IterMinerOptions full;
      full.min_support = min_sup;
      full.num_threads = threads;
      full.backend = BackendChoice::kCsr;
      PatternSet full_csr = MineFrequentIterative(db, full);
      full.backend = BackendChoice::kBitmap;
      PatternSet full_bitmap = MineFrequentIterative(db, full);
      ASSERT_EQ(Render(full_csr, dict), Render(full_bitmap, dict))
          << "full min_sup=" << min_sup << " threads=" << threads;
      full.backend = BackendChoice::kHybrid;
      PatternSet full_hybrid = MineFrequentIterative(db, full);
      ASSERT_EQ(Render(full_csr, dict), Render(full_hybrid, dict))
          << "full/hybrid min_sup=" << min_sup << " threads=" << threads;

      ClosedIterMinerOptions closed;
      closed.min_support = min_sup;
      closed.num_threads = threads;
      closed.backend = BackendChoice::kCsr;
      PatternSet closed_csr = MineClosedIterative(db, closed);
      closed.backend = BackendChoice::kBitmap;
      PatternSet closed_bitmap = MineClosedIterative(db, closed);
      ASSERT_EQ(Render(closed_csr, dict), Render(closed_bitmap, dict))
          << "closed min_sup=" << min_sup << " threads=" << threads;
      closed.backend = BackendChoice::kHybrid;
      PatternSet closed_hybrid = MineClosedIterative(db, closed);
      ASSERT_EQ(Render(closed_csr, dict), Render(closed_hybrid, dict))
          << "closed/hybrid min_sup=" << min_sup << " threads=" << threads;

      IterGeneratorMinerOptions gens;
      gens.min_support = min_sup;
      gens.num_threads = threads;
      gens.backend = BackendChoice::kCsr;
      PatternSet gens_csr = MineIterativeGenerators(db, gens);
      gens.backend = BackendChoice::kBitmap;
      PatternSet gens_bitmap = MineIterativeGenerators(db, gens);
      ASSERT_EQ(Render(gens_csr, dict), Render(gens_bitmap, dict))
          << "generators min_sup=" << min_sup << " threads=" << threads;
      gens.backend = BackendChoice::kHybrid;
      PatternSet gens_hybrid = MineIterativeGenerators(db, gens);
      ASSERT_EQ(Render(gens_csr, dict), Render(gens_hybrid, dict))
          << "generators/hybrid min_sup=" << min_sup
          << " threads=" << threads;
    }
  }
}

// Rules: the backend accelerates i-support counts and premise maximality
// tests; rule sets must match the backend-free scalar path exactly.
TEST_P(BackendEquivalenceTest, RulesAreByteIdenticalAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const EventDictionary& dict = db.dictionary();
  PositionIndex csr(db);
  BitmapIndex bitmap(db);
  HybridIndex hybrid(db);
  CountingBackend cb(csr), bb(bitmap), hb(hybrid);
  for (bool non_redundant : {true, false}) {
    RuleMinerOptions options;
    options.min_s_support = 2;
    options.min_confidence = 0.6;
    options.non_redundant = non_redundant;
    options.num_threads = 1;
    // Length caps keep the premise/consequent enumeration polynomial on
    // the dense tiny-alphabet corpora (the blowup is backend-independent).
    options.max_premise_length = 3;
    options.max_consequent_length = 3;
    RuleSet scalar = MineRecurrentRules(db, options, nullptr, nullptr);
    RuleSet with_csr = MineRecurrentRules(db, options, nullptr, nullptr, &cb);
    RuleSet with_bitmap =
        MineRecurrentRules(db, options, nullptr, nullptr, &bb);
    RuleSet with_hybrid =
        MineRecurrentRules(db, options, nullptr, nullptr, &hb);
    ASSERT_EQ(scalar.size(), with_csr.size());
    ASSERT_EQ(scalar.size(), with_bitmap.size());
    ASSERT_EQ(scalar.size(), with_hybrid.size());
    for (size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i].ToString(dict), with_csr[i].ToString(dict));
      ASSERT_EQ(scalar[i].ToString(dict), with_bitmap[i].ToString(dict));
      ASSERT_EQ(scalar[i].ToString(dict), with_hybrid[i].ToString(dict));
      ASSERT_EQ(scalar[i].i_support, with_bitmap[i].i_support);
      ASSERT_EQ(scalar[i].i_support, with_hybrid[i].i_support);
    }
  }
}

// Sharded execution: forcing either backend on every shard (and mixing,
// via auto) reproduces the single-pass output byte for byte.
TEST_P(BackendEquivalenceTest, ShardedMiningAgreesAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const std::string stem = "backend_equiv_" + std::to_string(p.seed);
  const std::string smdbset = TempPath(stem + ".smdbset");
  ShardWriterOptions shard_options;
  shard_options.shard_bytes = 1400;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, shard_options).ok());
  for (size_t threads : {1u, 4u}) {
    FullPatternsTask task;
    // High enough that the proportional per-shard thresholds stay above
    // the support-1 blowup regime on the larger random corpora (the
    // explosion is backend-independent; PR 4 chose its corpora the same
    // way).
    task.options.min_support = 6;
    task.options.num_threads = threads;

    Result<Engine> plain = Engine::Create(SequenceDatabase(db));
    ASSERT_TRUE(plain.ok());
    task.options.backend = BackendChoice::kCsr;
    Result<PatternSet> reference = plain->CollectPatterns(task);
    ASSERT_TRUE(reference.ok());

    for (BackendChoice choice :
         {BackendChoice::kAuto, BackendChoice::kCsr, BackendChoice::kBitmap,
          BackendChoice::kHybrid}) {
      task.options.backend = choice;
      Result<Engine> sharded = Engine::FromShardSet(smdbset);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      CollectingPatternSink sink;
      Result<RunReport> run = sharded->MineSharded(task, sink);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(Render(*reference, db.dictionary()),
                Render(sink.set(), sharded->database().dictionary()))
          << "threads=" << threads;
    }
  }
}

// Lazy merged view: a sharded session answers regular (non-sharded)
// tasks through a merged *view* over the per-shard indexes — the report
// says so ("lazy-merged"), and the emission is byte-identical to eagerly
// merging the shards into one arena and mining it, across every miner
// family and thread count.
TEST_P(BackendEquivalenceTest, LazyMergedViewMatchesEagerMerge) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const std::string smdbset =
      TempPath("lazy_merged_" + std::to_string(p.seed) + ".smdbset");
  ShardWriterOptions shard_options;
  // Tiny shards: even the smallest corpus in the matrix splits, so the
  // merged view always has real seq-base offsets and remap tables.
  shard_options.shard_bytes = 200;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, shard_options).ok());

  Result<Engine> eager = Engine::Create(SequenceDatabase(db));
  ASSERT_TRUE(eager.ok());
  Result<Engine> lazy = Engine::FromShardSet(smdbset);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_GT(lazy->shard_set().num_shards(), 1u);
  // Session metadata flows from the shard manifest, not the merged arena.
  ASSERT_EQ(lazy->num_sequences(), db.size());
  ASSERT_EQ(lazy->total_events(), db.TotalEvents());
  ASSERT_EQ(lazy->dictionary().size(), db.dictionary().size());

  for (size_t threads : {1u, 4u}) {
    {
      FullPatternsTask task;
      task.options.min_support = 3;
      task.options.num_threads = threads;
      task.options.backend = BackendChoice::kCsr;
      CollectingPatternSink want;
      ASSERT_TRUE(eager->Mine(task, want).ok());
      task.options.backend = BackendChoice::kAuto;
      CollectingPatternSink got;
      Result<RunReport> run = lazy->Mine(task, got);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run->backend, "lazy-merged");
      EXPECT_EQ(Render(want.set(), db.dictionary()),
                Render(got.set(), lazy->dictionary()))
          << "full threads=" << threads;
    }
    {
      ClosedTask task;
      task.options.min_support = 3;
      task.options.num_threads = threads;
      task.options.backend = BackendChoice::kCsr;
      CollectingPatternSink want;
      ASSERT_TRUE(eager->Mine(task, want).ok());
      task.options.backend = BackendChoice::kAuto;
      CollectingPatternSink got;
      Result<RunReport> run = lazy->Mine(task, got);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run->backend, "lazy-merged");
      EXPECT_EQ(Render(want.set(), db.dictionary()),
                Render(got.set(), lazy->dictionary()))
          << "closed threads=" << threads;
    }
    {
      GeneratorsTask task;
      task.options.min_support = 3;
      task.options.num_threads = threads;
      task.options.backend = BackendChoice::kCsr;
      CollectingPatternSink want;
      ASSERT_TRUE(eager->Mine(task, want).ok());
      task.options.backend = BackendChoice::kAuto;
      CollectingPatternSink got;
      Result<RunReport> run = lazy->Mine(task, got);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run->backend, "lazy-merged");
      EXPECT_EQ(Render(want.set(), db.dictionary()),
                Render(got.set(), lazy->dictionary()))
          << "generators threads=" << threads;
    }
  }

  // Explicit materialized backends stay available on the sharded session
  // (the documented escape hatch): forcing one merges the arena on first
  // use, stamps the report with that backend, and agrees byte for byte.
  FullPatternsTask task;
  task.options.min_support = 3;
  task.options.backend = BackendChoice::kCsr;
  CollectingPatternSink want;
  ASSERT_TRUE(eager->Mine(task, want).ok());
  task.options.backend = BackendChoice::kBitmap;
  CollectingPatternSink via_bitmap;
  Result<RunReport> run = lazy->Mine(task, via_bitmap);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->backend, "bitmap");
  EXPECT_EQ(Render(want.set(), db.dictionary()),
            Render(via_bitmap.set(), lazy->dictionary()));
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, BackendEquivalenceTest,
    ::testing::Values(EquivParams{3, 12, 8, 4}, EquivParams{17, 20, 14, 6},
                      EquivParams{29, 30, 20, 10}, EquivParams{71, 8, 64, 3},
                      EquivParams{97, 25, 40, 24}));

// Degraded mode: with a quarantined shard, the lazy merged view spans
// exactly the healthy shards — its output equals eagerly merging the
// surviving subset, and the report still says "lazy-merged".
TEST(LazyMergedEngineTest, QuarantinedShardsStayLazyAndMatchHealthySubset) {
  SequenceDatabase db = RandomDb(83, 40, 12, 6);
  const std::string smdbset = TempPath("lazy_quarantine.smdbset");
  ShardWriterOptions options;
  options.shard_bytes = 400;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, options).ok());
  {
    Result<ShardedDatabase> probe = ShardedDatabase::Open(smdbset);
    ASSERT_TRUE(probe.ok());
    ASSERT_GT(probe->num_shards(), 2u);
    // Corrupt shard 1 beyond recognition.
    std::ofstream f(probe->shard_path(1), std::ios::binary | std::ios::trunc);
    f << "not an smdb";
  }

  SetOpenOptions open_options;
  open_options.policy = ShardFailurePolicy::kQuarantine;
  Result<Engine> lazy = Engine::FromShardSet(smdbset, open_options);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_EQ(lazy->shard_set().open_report().quarantined.size(), 1u);

  // The eager reference mines the healthy subset merged into one arena.
  Result<Engine> healthy = Engine::Create(lazy->shard_set().Merge());
  ASSERT_TRUE(healthy.ok());

  for (size_t threads : {1u, 4u}) {
    FullPatternsTask task;
    task.options.min_support = 2;
    task.options.num_threads = threads;
    task.options.backend = BackendChoice::kCsr;
    CollectingPatternSink want;
    ASSERT_TRUE(healthy->Mine(task, want).ok());
    task.options.backend = BackendChoice::kAuto;
    CollectingPatternSink got;
    Result<RunReport> run = lazy->Mine(task, got);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->backend, "lazy-merged");
    EXPECT_EQ(Render(want.set(), healthy->dictionary()),
              Render(got.set(), lazy->dictionary()))
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Engine-level behavior: per-task override, report stamping, and the
// one-build-per-representation cache.

TEST(BackendEngineTest, SessionCachesEachRepresentationOnce) {
  SequenceDatabase db = RandomDb(5, 25, 30, 8);
  Engine engine{SequenceDatabase(db)};
  EXPECT_EQ(engine.index_builds(), 0u);

  FullPatternsTask bitmap_task;
  bitmap_task.options.min_support = 2;
  bitmap_task.options.backend = BackendChoice::kBitmap;
  CollectingPatternSink sink1;
  Result<RunReport> first = engine.Mine(bitmap_task, sink1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->backend, "bitmap");
  EXPECT_GT(first->index_build_seconds, 0.0);
  EXPECT_EQ(engine.index_builds(), 1u);

  CollectingPatternSink sink2;
  Result<RunReport> second = engine.Mine(bitmap_task, sink2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->index_build_seconds, 0.0);  // Cached.
  EXPECT_EQ(engine.index_builds(), 1u);

  FullPatternsTask csr_task = bitmap_task;
  csr_task.options.backend = BackendChoice::kCsr;
  CollectingPatternSink sink3;
  Result<RunReport> third = engine.Mine(csr_task, sink3);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->backend, "csr");
  EXPECT_EQ(engine.index_builds(), 2u);  // Second representation.

  FullPatternsTask hybrid_task = bitmap_task;
  hybrid_task.options.backend = BackendChoice::kHybrid;
  CollectingPatternSink sink4;
  Result<RunReport> fourth = engine.Mine(hybrid_task, sink4);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->backend, "hybrid");
  EXPECT_EQ(engine.index_builds(), 3u);  // Third representation.
  CollectingPatternSink sink5;
  Result<RunReport> fifth = engine.Mine(hybrid_task, sink5);
  ASSERT_TRUE(fifth.ok());
  EXPECT_EQ(fifth->index_build_seconds, 0.0);  // Cached.
  EXPECT_EQ(engine.index_builds(), 3u);

  EXPECT_EQ(Render(sink1.set(), db.dictionary()),
            Render(sink3.set(), db.dictionary()));
  EXPECT_EQ(Render(sink1.set(), db.dictionary()),
            Render(sink4.set(), db.dictionary()));
}

TEST(BackendEngineTest, RulesReportRecordsTheBackend) {
  SequenceDatabase db = RandomDb(13, 20, 25, 6);
  Engine engine{std::move(db)};
  RulesTask task;
  task.options.min_s_support = 2;
  task.options.min_confidence = 0.6;
  task.options.backend = BackendChoice::kBitmap;
  CollectingRuleSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->backend, "bitmap");
}

}  // namespace
}  // namespace specmine
