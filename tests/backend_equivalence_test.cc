// The backend-equivalence property: every miner produces byte-identical
// output — patterns, supports, rules, emission order — on the CSR and the
// bitmap counting backends, across randomized databases, thresholds,
// thread counts, and the plain / sharded execution paths. Plus the
// word-mask edge cases (sequence lengths straddling the 64-bit word
// boundary) and the adaptive chooser's dense/sparse verdicts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/itermine/bitmap_projection.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/itermine/generators.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/rulemine/rule_miner.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/support/random.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

SequenceDatabase RandomDb(uint64_t seed, size_t num_seqs, size_t max_len,
                          size_t alphabet) {
  Rng rng(seed);
  SequenceDatabaseBuilder db;
  for (size_t i = 0; i < alphabet; ++i) {
    db.mutable_dictionary()->Intern("e" + std::to_string(i));
  }
  for (size_t s = 0; s < num_seqs; ++s) {
    Sequence seq;
    size_t len = 1 + rng.Uniform(max_len);
    for (size_t k = 0; k < len; ++k) {
      seq.Append(static_cast<EventId>(rng.Uniform(alphabet)));
    }
    db.AddSequence(seq);
  }
  return db.Build();
}

std::string Render(const PatternSet& set, const EventDictionary& dict) {
  return set.ToString(dict);
}

// ---------------------------------------------------------------------------
// Word-wise primitive edge cases: first/last/count with ranges that start,
// end, and straddle 64-bit word boundaries.

TEST(BitmapIndexTest, ScanPrimitivesHandleWordBoundaries) {
  // Bits set at 0, 63, 64, 65, 127, 128, 200.
  std::vector<uint64_t> row(4, 0);
  for (size_t bit : {0, 63, 64, 65, 127, 128, 200}) {
    row[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  const uint64_t* r = row.data();
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 0, 256), 0u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 1, 256), 63u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 64, 256), 64u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 66, 256), 127u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 129, 256), 200u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 201, 256), kNoBit);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 63, 63), kNoBit);  // Empty.
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 63, 64), 63u);
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 0, 63), 0u);
  // Limit masks a set bit away.
  EXPECT_EQ(BitmapIndex::FirstSetAtOrAfter(r, 1, 63), kNoBit);

  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 256), 200u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 200), 128u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 128), 127u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 64), 63u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 0, 63), 0u);
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 1, 63), kNoBit);  // Lo masks 0.
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 65, 65), kNoBit);  // Empty.
  EXPECT_EQ(BitmapIndex::LastSetBefore(r, 64, 65), 64u);

  EXPECT_EQ(BitmapIndex::CountInRange(r, 0, 256), 7u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 63, 66), 3u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 64, 64), 0u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 1, 63), 0u);
  EXPECT_EQ(BitmapIndex::CountInRange(r, 128, 256), 2u);
  EXPECT_TRUE(BitmapIndex::AnyInRange(r, 65, 66));
  EXPECT_FALSE(BitmapIndex::AnyInRange(r, 66, 127));
}

// Sequences of lengths 63 / 64 / 65 (and an event only in the last,
// partially-filled word): the unpadded layout's boundary masks must not
// leak bits across sequences.
TEST(BitmapIndexTest, WordBoundarySequenceLengths) {
  for (size_t len : {63u, 64u, 65u}) {
    SequenceDatabaseBuilder builder;
    builder.mutable_dictionary()->Intern("a");
    builder.mutable_dictionary()->Intern("b");
    builder.mutable_dictionary()->Intern("z");
    // Sequence 0: a at every position except the last, which holds z —
    // the "event only in the last word" shape for len 65.
    Sequence s0;
    for (size_t k = 0; k + 1 < len; ++k) s0.Append(0);
    s0.Append(2);
    builder.AddSequence(s0);
    // Sequence 1 starts mid-word: b everywhere.
    Sequence s1;
    for (size_t k = 0; k < len; ++k) s1.Append(1);
    builder.AddSequence(s1);
    SequenceDatabase db = builder.Build();
    BitmapIndex bitmap(db);
    PositionIndex csr(db);
    for (EventId ev = 0; ev < 3; ++ev) {
      EXPECT_EQ(bitmap.TotalCount(ev), csr.TotalCount(ev)) << "len=" << len;
      EXPECT_EQ(bitmap.SequenceCount(ev), csr.SequenceCount(ev))
          << "len=" << len;
      EXPECT_EQ(SingleEventInstancesBitmap(bitmap, ev),
                SingleEventInstances(csr, ev))
          << "len=" << len;
    }
    // The z occurrence sits in the last word of sequence 0; sequence 1's
    // b-run must not bleed into its range queries (and vice versa).
    CountingBackend bb(bitmap);
    EXPECT_TRUE(bb.AnyInRange(2, 0, static_cast<Pos>(len - 1),
                              static_cast<Pos>(len - 1)));
    EXPECT_FALSE(bb.AnyInRange(1, 0, 0, static_cast<Pos>(len - 1)));
    EXPECT_FALSE(bb.AnyInRange(0, 1, 0, static_cast<Pos>(len - 1)));
    // Projection parity on a pattern rooted in each sequence.
    for (EventId root : {EventId{0}, EventId{1}}) {
      InstanceList insts = SingleEventInstances(csr, root);
      Pattern p{root};
      ForwardExtensionMap csr_fwd = ForwardExtensions(csr, p, insts);
      ProjectionWorkspace ws;
      ForwardExtensionMap bitmap_fwd;
      ForwardExtensionsBitmap(bitmap, p, insts, &ws, &bitmap_fwd);
      ASSERT_EQ(csr_fwd.size(), bitmap_fwd.size()) << "len=" << len;
      auto it = bitmap_fwd.begin();
      for (const auto& [ev, il] : csr_fwd) {
        EXPECT_EQ(ev, it->first);
        EXPECT_EQ(il, it->second);
        ++it;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The adaptive chooser: dense corpora go vertical, sparse corpora stay on
// the CSR index (the acceptance pins of the auto mode).

TEST(BackendChooserTest, DensePicksBitmapSparsePicksCsr) {
  // Dense: 40 sequences x 60 events over 12 distinct names.
  SequenceDatabase dense = RandomDb(1, 40, 60, 12);
  EXPECT_EQ(ChooseBackendKind(dense), BackendKind::kBitmap);
  // Sparse: tiny corpus over 500 distinct names (mean occurrences ~1).
  SequenceDatabase sparse = RandomDb(2, 30, 15, 500);
  EXPECT_EQ(ChooseBackendKind(sparse), BackendKind::kCsr);
  // Empty databases default to CSR.
  EXPECT_EQ(ChooseBackendKind(SequenceDatabase()), BackendKind::kCsr);
}

// ---------------------------------------------------------------------------
// Projection-level equivalence on randomized databases: the dispatching
// overloads agree entry-for-entry between backends.

struct EquivParams {
  uint64_t seed;
  size_t num_seqs, max_len, alphabet;
};

class BackendEquivalenceTest : public ::testing::TestWithParam<EquivParams> {
};

TEST_P(BackendEquivalenceTest, ProjectionQueriesAgree) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  PositionIndex csr(db);
  BitmapIndex bitmap(db);
  CountingBackend cb(csr), bb(bitmap);
  ASSERT_EQ(cb.num_events(), bb.num_events());
  ProjectionWorkspace csr_ws, bitmap_ws;
  for (EventId ev = 0; ev < db.dictionary().size(); ++ev) {
    ASSERT_EQ(cb.TotalCount(ev), bb.TotalCount(ev));
    ASSERT_EQ(cb.SequenceCount(ev), bb.SequenceCount(ev));
    InstanceList insts = SingleEventInstances(cb, ev);
    ASSERT_EQ(insts, SingleEventInstances(bb, ev));
    if (insts.empty()) continue;
    // Grow a couple of levels and compare the full projection at each.
    for (EventId second = 0; second < db.dictionary().size(); ++second) {
      Pattern pat = Pattern{ev}.Extend(second);
      InstanceList pat_insts = FindAllInstances(pat, db);
      if (pat_insts.empty()) continue;
      ForwardExtensionMap csr_fwd, bitmap_fwd;
      ForwardExtensions(cb, pat, pat_insts, &csr_ws, &csr_fwd);
      ForwardExtensions(bb, pat, pat_insts, &bitmap_ws, &bitmap_fwd);
      ASSERT_EQ(csr_fwd.size(), bitmap_fwd.size()) << pat.ToString();
      auto it = bitmap_fwd.begin();
      for (const auto& [e, il] : csr_fwd) {
        ASSERT_EQ(e, it->first) << pat.ToString();
        ASSERT_EQ(il, it->second) << pat.ToString();
        ++it;
      }
      const BackwardExtensionMap& csr_back =
          BackwardExtensions(cb, pat, pat_insts, &csr_ws);
      // Copy: the reference lives in the workspace.
      BackwardExtensionMap csr_back_copy;
      for (const auto& [e, ext] : csr_back) csr_back_copy.emplace_back(e, ext);
      const BackwardExtensionMap& bitmap_back =
          BackwardExtensions(bb, pat, pat_insts, &bitmap_ws);
      ASSERT_EQ(csr_back_copy.size(), bitmap_back.size()) << pat.ToString();
      auto bit = bitmap_back.begin();
      for (const auto& [e, ext] : csr_back_copy) {
        ASSERT_EQ(e, bit->first);
        ASSERT_EQ(ext.support, bit->second.support) << pat.ToString();
        ASSERT_EQ(ext.all_adjacent, bit->second.all_adjacent)
            << pat.ToString();
        ++bit;
      }
      // The QRE recount and the occurrence count agree with the oracles.
      ASSERT_EQ(CountInstances(bb, pat), CountInstances(pat, db));
      ASSERT_EQ(CountOccurrences(bb, pat), CountOccurrences(pat, db));
    }
  }
}

// Full / closed / generator miners: byte-identical emission across
// backends x thresholds x thread counts.
TEST_P(BackendEquivalenceTest, MinersAreByteIdenticalAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const EventDictionary& dict = db.dictionary();
  // min_support 1 is omitted: the *full* pattern tree at support 1 grows
  // combinatorially on the larger corpora (equally on both backends) —
  // the low-threshold regime is covered by the smaller projection test.
  for (uint64_t min_sup : {2u, 4u}) {
    for (size_t threads : {1u, 4u}) {
      IterMinerOptions full;
      full.min_support = min_sup;
      full.num_threads = threads;
      full.backend = BackendChoice::kCsr;
      PatternSet full_csr = MineFrequentIterative(db, full);
      full.backend = BackendChoice::kBitmap;
      PatternSet full_bitmap = MineFrequentIterative(db, full);
      ASSERT_EQ(Render(full_csr, dict), Render(full_bitmap, dict))
          << "full min_sup=" << min_sup << " threads=" << threads;

      ClosedIterMinerOptions closed;
      closed.min_support = min_sup;
      closed.num_threads = threads;
      closed.backend = BackendChoice::kCsr;
      PatternSet closed_csr = MineClosedIterative(db, closed);
      closed.backend = BackendChoice::kBitmap;
      PatternSet closed_bitmap = MineClosedIterative(db, closed);
      ASSERT_EQ(Render(closed_csr, dict), Render(closed_bitmap, dict))
          << "closed min_sup=" << min_sup << " threads=" << threads;

      IterGeneratorMinerOptions gens;
      gens.min_support = min_sup;
      gens.num_threads = threads;
      gens.backend = BackendChoice::kCsr;
      PatternSet gens_csr = MineIterativeGenerators(db, gens);
      gens.backend = BackendChoice::kBitmap;
      PatternSet gens_bitmap = MineIterativeGenerators(db, gens);
      ASSERT_EQ(Render(gens_csr, dict), Render(gens_bitmap, dict))
          << "generators min_sup=" << min_sup << " threads=" << threads;
    }
  }
}

// Rules: the backend accelerates i-support counts and premise maximality
// tests; rule sets must match the backend-free scalar path exactly.
TEST_P(BackendEquivalenceTest, RulesAreByteIdenticalAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const EventDictionary& dict = db.dictionary();
  PositionIndex csr(db);
  BitmapIndex bitmap(db);
  CountingBackend cb(csr), bb(bitmap);
  for (bool non_redundant : {true, false}) {
    RuleMinerOptions options;
    options.min_s_support = 2;
    options.min_confidence = 0.6;
    options.non_redundant = non_redundant;
    options.num_threads = 1;
    // Length caps keep the premise/consequent enumeration polynomial on
    // the dense tiny-alphabet corpora (the blowup is backend-independent).
    options.max_premise_length = 3;
    options.max_consequent_length = 3;
    RuleSet scalar = MineRecurrentRules(db, options, nullptr, nullptr);
    RuleSet with_csr = MineRecurrentRules(db, options, nullptr, nullptr, &cb);
    RuleSet with_bitmap =
        MineRecurrentRules(db, options, nullptr, nullptr, &bb);
    ASSERT_EQ(scalar.size(), with_csr.size());
    ASSERT_EQ(scalar.size(), with_bitmap.size());
    for (size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i].ToString(dict), with_csr[i].ToString(dict));
      ASSERT_EQ(scalar[i].ToString(dict), with_bitmap[i].ToString(dict));
      ASSERT_EQ(scalar[i].i_support, with_bitmap[i].i_support);
    }
  }
}

// Sharded execution: forcing either backend on every shard (and mixing,
// via auto) reproduces the single-pass output byte for byte.
TEST_P(BackendEquivalenceTest, ShardedMiningAgreesAcrossBackends) {
  const EquivParams p = GetParam();
  SequenceDatabase db = RandomDb(p.seed, p.num_seqs, p.max_len, p.alphabet);
  const std::string stem = "backend_equiv_" + std::to_string(p.seed);
  const std::string smdbset = TempPath(stem + ".smdbset");
  ShardWriterOptions shard_options;
  shard_options.shard_bytes = 1400;
  ASSERT_TRUE(WriteShardedDatabase(db, smdbset, shard_options).ok());
  for (size_t threads : {1u, 4u}) {
    FullPatternsTask task;
    // High enough that the proportional per-shard thresholds stay above
    // the support-1 blowup regime on the larger random corpora (the
    // explosion is backend-independent; PR 4 chose its corpora the same
    // way).
    task.options.min_support = 6;
    task.options.num_threads = threads;

    Result<Engine> plain = Engine::Create(SequenceDatabase(db));
    ASSERT_TRUE(plain.ok());
    task.options.backend = BackendChoice::kCsr;
    Result<PatternSet> reference = plain->CollectPatterns(task);
    ASSERT_TRUE(reference.ok());

    for (BackendChoice choice : {BackendChoice::kAuto, BackendChoice::kCsr,
                                 BackendChoice::kBitmap}) {
      task.options.backend = choice;
      Result<Engine> sharded = Engine::FromShardSet(smdbset);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      CollectingPatternSink sink;
      Result<RunReport> run = sharded->MineSharded(task, sink);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(Render(*reference, db.dictionary()),
                Render(sink.set(), sharded->database().dictionary()))
          << "threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatabases, BackendEquivalenceTest,
    ::testing::Values(EquivParams{3, 12, 8, 4}, EquivParams{17, 20, 14, 6},
                      EquivParams{29, 30, 20, 10}, EquivParams{71, 8, 64, 3},
                      EquivParams{97, 25, 40, 24}));

// ---------------------------------------------------------------------------
// Engine-level behavior: per-task override, report stamping, and the
// one-build-per-representation cache.

TEST(BackendEngineTest, SessionCachesEachRepresentationOnce) {
  SequenceDatabase db = RandomDb(5, 25, 30, 8);
  Engine engine{SequenceDatabase(db)};
  EXPECT_EQ(engine.index_builds(), 0u);

  FullPatternsTask bitmap_task;
  bitmap_task.options.min_support = 2;
  bitmap_task.options.backend = BackendChoice::kBitmap;
  CollectingPatternSink sink1;
  Result<RunReport> first = engine.Mine(bitmap_task, sink1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->backend, "bitmap");
  EXPECT_GT(first->index_build_seconds, 0.0);
  EXPECT_EQ(engine.index_builds(), 1u);

  CollectingPatternSink sink2;
  Result<RunReport> second = engine.Mine(bitmap_task, sink2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->index_build_seconds, 0.0);  // Cached.
  EXPECT_EQ(engine.index_builds(), 1u);

  FullPatternsTask csr_task = bitmap_task;
  csr_task.options.backend = BackendChoice::kCsr;
  CollectingPatternSink sink3;
  Result<RunReport> third = engine.Mine(csr_task, sink3);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->backend, "csr");
  EXPECT_EQ(engine.index_builds(), 2u);  // Second representation.

  EXPECT_EQ(Render(sink1.set(), db.dictionary()),
            Render(sink3.set(), db.dictionary()));
}

TEST(BackendEngineTest, RulesReportRecordsTheBackend) {
  SequenceDatabase db = RandomDb(13, 20, 25, 6);
  Engine engine{std::move(db)};
  RulesTask task;
  task.options.min_s_support = 2;
  task.options.min_confidence = 0.6;
  task.options.backend = BackendChoice::kBitmap;
  CollectingRuleSink sink;
  Result<RunReport> run = engine.Mine(task, sink);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->backend, "bitmap");
}

}  // namespace
}  // namespace specmine
