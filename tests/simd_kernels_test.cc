// The kernel-dispatch property: the AVX2 word kernels are observationally
// identical to the scalar table (which delegates to the BitmapIndex static
// primitives) on every range shape — random rows, all-zero and all-one
// rows, and the 63/64/65-bit word-boundary cases. Plus the dispatch
// plumbing itself: SetKernelsForTest pins the table Kernels() returns,
// and SimdDispatchLevel() tracks it.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/itermine/bitmap_index.h"
#include "src/itermine/simd_kernels.h"
#include "src/support/random.h"

namespace specmine {
namespace {

// Every (from, limit) pair is exercised on rows this many words long —
// big enough for the AVX2 kernels' 4-word inner loop to run full
// iterations AND hit every prologue/epilogue length.
constexpr size_t kWords = 8;
constexpr size_t kBits = kWords * 64;

void ExpectKernelsAgree(const SimdKernels& a, const SimdKernels& b,
                        const uint64_t* row, size_t from, size_t limit) {
  ASSERT_EQ(a.first_set(row, from, limit), b.first_set(row, from, limit))
      << "first_set [" << from << ", " << limit << ")";
  ASSERT_EQ(a.last_set(row, from, limit), b.last_set(row, from, limit))
      << "last_set [" << from << ", " << limit << ")";
  ASSERT_EQ(a.any_range(row, from, limit), b.any_range(row, from, limit))
      << "any_range [" << from << ", " << limit << ")";
  ASSERT_EQ(a.count_range(row, from, limit), b.count_range(row, from, limit))
      << "count_range [" << from << ", " << limit << ")";
}

// The interesting bit positions: word starts/ends and their neighbors.
std::vector<size_t> BoundaryPositions() {
  std::vector<size_t> out;
  for (size_t w = 0; w <= kWords; ++w) {
    for (int delta : {-2, -1, 0, 1, 2}) {
      int64_t pos = static_cast<int64_t>(w) * 64 + delta;
      if (pos >= 0 && pos <= static_cast<int64_t>(kBits)) {
        out.push_back(static_cast<size_t>(pos));
      }
    }
  }
  return out;
}

class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = Avx2KernelsOrNull();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "AVX2 kernels unavailable (build or CPU); the scalar "
                      "table is the only one and is its own oracle.";
    }
  }
  const SimdKernels* avx2_ = nullptr;
};

TEST_F(SimdKernelsTest, ScanKernelsAgreeOnBoundaryRows) {
  // Bits set at word boundaries and their neighbors (the shape of the
  // BitmapIndex word-boundary test, widened to 8 words).
  std::vector<uint64_t> row(kWords, 0);
  for (size_t bit : {0u, 63u, 64u, 65u, 127u, 128u, 200u, 255u, 256u, 448u,
                     511u}) {
    row[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
  const std::vector<size_t> probes = BoundaryPositions();
  for (size_t from : probes) {
    for (size_t limit : probes) {
      if (from > limit) continue;
      ExpectKernelsAgree(*avx2_, ScalarKernels(), row.data(), from, limit);
    }
  }
}

TEST_F(SimdKernelsTest, ScanKernelsAgreeOnDegenerateRows) {
  const std::vector<uint64_t> zeros(kWords, 0);
  const std::vector<uint64_t> ones(kWords, ~uint64_t{0});
  const std::vector<size_t> probes = BoundaryPositions();
  for (const std::vector<uint64_t>& row : {zeros, ones}) {
    for (size_t from : probes) {
      for (size_t limit : probes) {
        if (from > limit) continue;
        ExpectKernelsAgree(*avx2_, ScalarKernels(), row.data(), from, limit);
      }
    }
  }
}

TEST_F(SimdKernelsTest, ScanKernelsAgreeOnRandomRows) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint64_t> row(kWords);
    // Mix densities: every 64-bit pattern, sparse rows, near-full rows.
    for (uint64_t& w : row) {
      w = rng.Next64();
      if (trial % 3 == 1) w &= rng.Next64() & rng.Next64();  // Sparse.
      if (trial % 3 == 2) w |= rng.Next64() | rng.Next64();  // Dense.
    }
    for (int probe = 0; probe < 32; ++probe) {
      size_t a = rng.Uniform(kBits + 1);
      size_t b = rng.Uniform(kBits + 1);
      if (a > b) std::swap(a, b);
      ExpectKernelsAgree(*avx2_, ScalarKernels(), row.data(), a, b);
    }
    // Also probe against the scalar oracle's own contract: kNoBit on empty.
    ExpectKernelsAgree(*avx2_, ScalarKernels(), row.data(), kBits, kBits);
  }
}

TEST_F(SimdKernelsTest, UnionKernelAgreesOnRandomRowSets) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = rng.Uniform(9);  // 0..8 rows, including the n==0 zeroing.
    std::vector<std::vector<uint64_t>> rows(n);
    std::vector<const uint64_t*> ptrs(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i].resize(kWords);
      for (uint64_t& w : rows[i]) w = rng.Next64() & rng.Next64();
      ptrs[i] = rows[i].data();
    }
    size_t wb = rng.Uniform(kWords + 1);
    size_t we = rng.Uniform(kWords + 1);
    if (wb > we) std::swap(wb, we);
    // Poison both outputs so stale words would be caught.
    std::vector<uint64_t> got(kWords, 0xDEADBEEFCAFEF00Dull);
    std::vector<uint64_t> want = got;
    avx2_->union_rows(ptrs.data(), n, wb, we, got.data());
    ScalarKernels().union_rows(ptrs.data(), n, wb, we, want.data());
    ASSERT_EQ(got, want) << "n=" << n << " wb=" << wb << " we=" << we;
  }
}

TEST(SimdDispatchTest, TestOverridePinsTheTableAndTheLevel) {
  SetKernelsForTest(&ScalarKernels());
  EXPECT_EQ(&Kernels(), &ScalarKernels());
  EXPECT_STREQ(SimdDispatchLevel(), "scalar");
  if (const SimdKernels* avx2 = Avx2KernelsOrNull()) {
    SetKernelsForTest(avx2);
    EXPECT_EQ(&Kernels(), avx2);
    EXPECT_STREQ(SimdDispatchLevel(), "avx2");
  }
  SetKernelsForTest(nullptr);  // Restore normal resolution.
  const char* level = SimdDispatchLevel();
  EXPECT_TRUE(std::string(level) == "avx2" || std::string(level) == "scalar");
}

TEST(SimdDispatchTest, TableLevelsAreLabeled) {
  EXPECT_STREQ(ScalarKernels().level, "scalar");
  if (const SimdKernels* avx2 = Avx2KernelsOrNull()) {
    EXPECT_STREQ(avx2->level, "avx2");
  }
}

}  // namespace
}  // namespace specmine
