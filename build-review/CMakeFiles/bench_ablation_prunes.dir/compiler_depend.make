# Empty compiler generated dependencies file for bench_ablation_prunes.
# This may be replaced when dependencies are built.
