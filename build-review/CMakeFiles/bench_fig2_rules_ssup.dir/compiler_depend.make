# Empty compiler generated dependencies file for bench_fig2_rules_ssup.
# This may be replaced when dependencies are built.
