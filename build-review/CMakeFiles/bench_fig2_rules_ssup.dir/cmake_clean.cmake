file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rules_ssup.dir/bench/fig2_rules_ssup.cc.o"
  "CMakeFiles/bench_fig2_rules_ssup.dir/bench/fig2_rules_ssup.cc.o.d"
  "bench_fig2_rules_ssup"
  "bench_fig2_rules_ssup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rules_ssup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
