# Empty compiler generated dependencies file for bench_fig5_case_security.
# This may be replaced when dependencies are built.
