file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_case_security.dir/bench/fig5_case_security.cc.o"
  "CMakeFiles/bench_fig5_case_security.dir/bench/fig5_case_security.cc.o.d"
  "bench_fig5_case_security"
  "bench_fig5_case_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_case_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
