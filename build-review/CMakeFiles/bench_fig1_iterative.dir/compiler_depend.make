# Empty compiler generated dependencies file for bench_fig1_iterative.
# This may be replaced when dependencies are built.
