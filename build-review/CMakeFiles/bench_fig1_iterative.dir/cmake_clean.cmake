file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_iterative.dir/bench/fig1_iterative.cc.o"
  "CMakeFiles/bench_fig1_iterative.dir/bench/fig1_iterative.cc.o.d"
  "bench_fig1_iterative"
  "bench_fig1_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
