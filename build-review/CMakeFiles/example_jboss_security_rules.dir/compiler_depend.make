# Empty compiler generated dependencies file for example_jboss_security_rules.
# This may be replaced when dependencies are built.
