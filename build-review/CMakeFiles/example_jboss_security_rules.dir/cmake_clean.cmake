file(REMOVE_RECURSE
  "CMakeFiles/example_jboss_security_rules.dir/examples/jboss_security_rules.cpp.o"
  "CMakeFiles/example_jboss_security_rules.dir/examples/jboss_security_rules.cpp.o.d"
  "example_jboss_security_rules"
  "example_jboss_security_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_jboss_security_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
