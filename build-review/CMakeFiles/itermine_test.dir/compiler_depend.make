# Empty compiler generated dependencies file for itermine_test.
# This may be replaced when dependencies are built.
