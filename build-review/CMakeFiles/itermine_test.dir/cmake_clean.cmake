file(REMOVE_RECURSE
  "CMakeFiles/itermine_test.dir/tests/itermine_test.cc.o"
  "CMakeFiles/itermine_test.dir/tests/itermine_test.cc.o.d"
  "itermine_test"
  "itermine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itermine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
