# Empty dependencies file for itermine_property_test.
# This may be replaced when dependencies are built.
