file(REMOVE_RECURSE
  "CMakeFiles/itermine_property_test.dir/tests/itermine_property_test.cc.o"
  "CMakeFiles/itermine_property_test.dir/tests/itermine_property_test.cc.o.d"
  "itermine_property_test"
  "itermine_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itermine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
