file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rules_conf.dir/bench/fig3_rules_conf.cc.o"
  "CMakeFiles/bench_fig3_rules_conf.dir/bench/fig3_rules_conf.cc.o.d"
  "bench_fig3_rules_conf"
  "bench_fig3_rules_conf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rules_conf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
