# Empty compiler generated dependencies file for bench_fig3_rules_conf.
# This may be replaced when dependencies are built.
