file(REMOVE_RECURSE
  "CMakeFiles/perf_core_test.dir/tests/perf_core_test.cc.o"
  "CMakeFiles/perf_core_test.dir/tests/perf_core_test.cc.o.d"
  "perf_core_test"
  "perf_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
