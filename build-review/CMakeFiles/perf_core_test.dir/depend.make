# Empty dependencies file for perf_core_test.
# This may be replaced when dependencies are built.
