# Empty compiler generated dependencies file for example_api_misuse.
# This may be replaced when dependencies are built.
