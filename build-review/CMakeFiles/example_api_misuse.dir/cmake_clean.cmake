file(REMOVE_RECURSE
  "CMakeFiles/example_api_misuse.dir/examples/api_misuse.cpp.o"
  "CMakeFiles/example_api_misuse.dir/examples/api_misuse.cpp.o.d"
  "example_api_misuse"
  "example_api_misuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_api_misuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
