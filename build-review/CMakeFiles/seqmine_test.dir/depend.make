# Empty dependencies file for seqmine_test.
# This may be replaced when dependencies are built.
