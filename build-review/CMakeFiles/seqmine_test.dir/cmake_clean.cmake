file(REMOVE_RECURSE
  "CMakeFiles/seqmine_test.dir/tests/seqmine_test.cc.o"
  "CMakeFiles/seqmine_test.dir/tests/seqmine_test.cc.o.d"
  "seqmine_test"
  "seqmine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seqmine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
