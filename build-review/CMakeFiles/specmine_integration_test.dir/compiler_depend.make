# Empty compiler generated dependencies file for specmine_integration_test.
# This may be replaced when dependencies are built.
