file(REMOVE_RECURSE
  "CMakeFiles/specmine_integration_test.dir/tests/specmine_integration_test.cc.o"
  "CMakeFiles/specmine_integration_test.dir/tests/specmine_integration_test.cc.o.d"
  "specmine_integration_test"
  "specmine_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specmine_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
