file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ltl.dir/bench/table2_ltl.cc.o"
  "CMakeFiles/bench_table2_ltl.dir/bench/table2_ltl.cc.o.d"
  "bench_table2_ltl"
  "bench_table2_ltl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
