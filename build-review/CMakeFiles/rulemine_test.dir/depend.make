# Empty dependencies file for rulemine_test.
# This may be replaced when dependencies are built.
