file(REMOVE_RECURSE
  "CMakeFiles/rulemine_test.dir/tests/rulemine_test.cc.o"
  "CMakeFiles/rulemine_test.dir/tests/rulemine_test.cc.o.d"
  "rulemine_test"
  "rulemine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulemine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
