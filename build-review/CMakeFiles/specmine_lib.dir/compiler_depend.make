# Empty compiler generated dependencies file for specmine_lib.
# This may be replaced when dependencies are built.
