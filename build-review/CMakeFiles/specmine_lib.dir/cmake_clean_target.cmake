file(REMOVE_RECURSE
  "libspecmine_lib.a"
)
