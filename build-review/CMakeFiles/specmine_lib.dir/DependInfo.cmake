
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/engine.cc" "CMakeFiles/specmine_lib.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/run_report.cc" "CMakeFiles/specmine_lib.dir/src/engine/run_report.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/engine/run_report.cc.o.d"
  "/root/repo/src/engine/sinks.cc" "CMakeFiles/specmine_lib.dir/src/engine/sinks.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/engine/sinks.cc.o.d"
  "/root/repo/src/engine/tasks.cc" "CMakeFiles/specmine_lib.dir/src/engine/tasks.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/engine/tasks.cc.o.d"
  "/root/repo/src/episode/episode_rules.cc" "CMakeFiles/specmine_lib.dir/src/episode/episode_rules.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/episode/episode_rules.cc.o.d"
  "/root/repo/src/episode/gap_episodes.cc" "CMakeFiles/specmine_lib.dir/src/episode/gap_episodes.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/episode/gap_episodes.cc.o.d"
  "/root/repo/src/episode/minepi.cc" "CMakeFiles/specmine_lib.dir/src/episode/minepi.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/episode/minepi.cc.o.d"
  "/root/repo/src/episode/winepi.cc" "CMakeFiles/specmine_lib.dir/src/episode/winepi.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/episode/winepi.cc.o.d"
  "/root/repo/src/itermine/brute_force.cc" "CMakeFiles/specmine_lib.dir/src/itermine/brute_force.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/brute_force.cc.o.d"
  "/root/repo/src/itermine/closed_miner.cc" "CMakeFiles/specmine_lib.dir/src/itermine/closed_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/closed_miner.cc.o.d"
  "/root/repo/src/itermine/full_miner.cc" "CMakeFiles/specmine_lib.dir/src/itermine/full_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/full_miner.cc.o.d"
  "/root/repo/src/itermine/generators.cc" "CMakeFiles/specmine_lib.dir/src/itermine/generators.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/generators.cc.o.d"
  "/root/repo/src/itermine/instance.cc" "CMakeFiles/specmine_lib.dir/src/itermine/instance.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/instance.cc.o.d"
  "/root/repo/src/itermine/projection.cc" "CMakeFiles/specmine_lib.dir/src/itermine/projection.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/projection.cc.o.d"
  "/root/repo/src/itermine/qre_verifier.cc" "CMakeFiles/specmine_lib.dir/src/itermine/qre_verifier.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/itermine/qre_verifier.cc.o.d"
  "/root/repo/src/ltl/checker.cc" "CMakeFiles/specmine_lib.dir/src/ltl/checker.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/ltl/checker.cc.o.d"
  "/root/repo/src/ltl/formula.cc" "CMakeFiles/specmine_lib.dir/src/ltl/formula.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/ltl/formula.cc.o.d"
  "/root/repo/src/ltl/parser.cc" "CMakeFiles/specmine_lib.dir/src/ltl/parser.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/ltl/parser.cc.o.d"
  "/root/repo/src/ltl/translate.cc" "CMakeFiles/specmine_lib.dir/src/ltl/translate.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/ltl/translate.cc.o.d"
  "/root/repo/src/patterns/pattern.cc" "CMakeFiles/specmine_lib.dir/src/patterns/pattern.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/patterns/pattern.cc.o.d"
  "/root/repo/src/patterns/pattern_set.cc" "CMakeFiles/specmine_lib.dir/src/patterns/pattern_set.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/patterns/pattern_set.cc.o.d"
  "/root/repo/src/rulemine/backward_rules.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/backward_rules.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/backward_rules.cc.o.d"
  "/root/repo/src/rulemine/consequent_miner.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/consequent_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/consequent_miner.cc.o.d"
  "/root/repo/src/rulemine/premise_miner.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/premise_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/premise_miner.cc.o.d"
  "/root/repo/src/rulemine/redundancy.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/redundancy.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/redundancy.cc.o.d"
  "/root/repo/src/rulemine/rule.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/rule.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/rule.cc.o.d"
  "/root/repo/src/rulemine/rule_miner.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/rule_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/rule_miner.cc.o.d"
  "/root/repo/src/rulemine/temporal_points.cc" "CMakeFiles/specmine_lib.dir/src/rulemine/temporal_points.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/rulemine/temporal_points.cc.o.d"
  "/root/repo/src/seqmine/closed_sequential_miner.cc" "CMakeFiles/specmine_lib.dir/src/seqmine/closed_sequential_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/seqmine/closed_sequential_miner.cc.o.d"
  "/root/repo/src/seqmine/generator_miner.cc" "CMakeFiles/specmine_lib.dir/src/seqmine/generator_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/seqmine/generator_miner.cc.o.d"
  "/root/repo/src/seqmine/occurrence_engine.cc" "CMakeFiles/specmine_lib.dir/src/seqmine/occurrence_engine.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/seqmine/occurrence_engine.cc.o.d"
  "/root/repo/src/seqmine/prefixspan.cc" "CMakeFiles/specmine_lib.dir/src/seqmine/prefixspan.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/seqmine/prefixspan.cc.o.d"
  "/root/repo/src/sim/security_component.cc" "CMakeFiles/specmine_lib.dir/src/sim/security_component.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/sim/security_component.cc.o.d"
  "/root/repo/src/sim/test_suite.cc" "CMakeFiles/specmine_lib.dir/src/sim/test_suite.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/sim/test_suite.cc.o.d"
  "/root/repo/src/sim/trace_collector.cc" "CMakeFiles/specmine_lib.dir/src/sim/trace_collector.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/sim/trace_collector.cc.o.d"
  "/root/repo/src/sim/transaction_component.cc" "CMakeFiles/specmine_lib.dir/src/sim/transaction_component.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/sim/transaction_component.cc.o.d"
  "/root/repo/src/specmine/cli.cc" "CMakeFiles/specmine_lib.dir/src/specmine/cli.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/cli.cc.o.d"
  "/root/repo/src/specmine/monitor.cc" "CMakeFiles/specmine_lib.dir/src/specmine/monitor.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/monitor.cc.o.d"
  "/root/repo/src/specmine/ranking.cc" "CMakeFiles/specmine_lib.dir/src/specmine/ranking.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/ranking.cc.o.d"
  "/root/repo/src/specmine/report.cc" "CMakeFiles/specmine_lib.dir/src/specmine/report.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/report.cc.o.d"
  "/root/repo/src/specmine/spec_miner.cc" "CMakeFiles/specmine_lib.dir/src/specmine/spec_miner.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/spec_miner.cc.o.d"
  "/root/repo/src/specmine/visualize.cc" "CMakeFiles/specmine_lib.dir/src/specmine/visualize.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/specmine/visualize.cc.o.d"
  "/root/repo/src/support/random.cc" "CMakeFiles/specmine_lib.dir/src/support/random.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/support/random.cc.o.d"
  "/root/repo/src/support/status.cc" "CMakeFiles/specmine_lib.dir/src/support/status.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/support/status.cc.o.d"
  "/root/repo/src/support/stopwatch.cc" "CMakeFiles/specmine_lib.dir/src/support/stopwatch.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/support/stopwatch.cc.o.d"
  "/root/repo/src/support/strings.cc" "CMakeFiles/specmine_lib.dir/src/support/strings.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/support/strings.cc.o.d"
  "/root/repo/src/support/thread_pool.cc" "CMakeFiles/specmine_lib.dir/src/support/thread_pool.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/support/thread_pool.cc.o.d"
  "/root/repo/src/synth/planted_generator.cc" "CMakeFiles/specmine_lib.dir/src/synth/planted_generator.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/synth/planted_generator.cc.o.d"
  "/root/repo/src/synth/quest_generator.cc" "CMakeFiles/specmine_lib.dir/src/synth/quest_generator.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/synth/quest_generator.cc.o.d"
  "/root/repo/src/trace/csv_trace_reader.cc" "CMakeFiles/specmine_lib.dir/src/trace/csv_trace_reader.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/csv_trace_reader.cc.o.d"
  "/root/repo/src/trace/database_stats.cc" "CMakeFiles/specmine_lib.dir/src/trace/database_stats.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/database_stats.cc.o.d"
  "/root/repo/src/trace/event_dictionary.cc" "CMakeFiles/specmine_lib.dir/src/trace/event_dictionary.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/event_dictionary.cc.o.d"
  "/root/repo/src/trace/position_index.cc" "CMakeFiles/specmine_lib.dir/src/trace/position_index.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/position_index.cc.o.d"
  "/root/repo/src/trace/sequence.cc" "CMakeFiles/specmine_lib.dir/src/trace/sequence.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/sequence.cc.o.d"
  "/root/repo/src/trace/sequence_database.cc" "CMakeFiles/specmine_lib.dir/src/trace/sequence_database.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/sequence_database.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "CMakeFiles/specmine_lib.dir/src/trace/trace_io.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/trace/trace_io.cc.o.d"
  "/root/repo/src/twoevent/perracotta.cc" "CMakeFiles/specmine_lib.dir/src/twoevent/perracotta.cc.o" "gcc" "CMakeFiles/specmine_lib.dir/src/twoevent/perracotta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
