# Empty dependencies file for bench_ablation_rule_prunes.
# This may be replaced when dependencies are built.
