file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rule_prunes.dir/bench/ablation_rule_prunes.cc.o"
  "CMakeFiles/bench_ablation_rule_prunes.dir/bench/ablation_rule_prunes.cc.o.d"
  "bench_ablation_rule_prunes"
  "bench_ablation_rule_prunes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rule_prunes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
