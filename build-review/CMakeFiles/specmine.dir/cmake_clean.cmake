file(REMOVE_RECURSE
  "CMakeFiles/specmine.dir/tools/specmine_cli.cc.o"
  "CMakeFiles/specmine.dir/tools/specmine_cli.cc.o.d"
  "specmine"
  "specmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
