# Empty dependencies file for specmine.
# This may be replaced when dependencies are built.
