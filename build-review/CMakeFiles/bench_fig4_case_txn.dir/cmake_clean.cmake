file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_case_txn.dir/bench/fig4_case_txn.cc.o"
  "CMakeFiles/bench_fig4_case_txn.dir/bench/fig4_case_txn.cc.o.d"
  "bench_fig4_case_txn"
  "bench_fig4_case_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_case_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
