# Empty dependencies file for bench_fig4_case_txn.
# This may be replaced when dependencies are built.
