file(REMOVE_RECURSE
  "CMakeFiles/visualize_test.dir/tests/visualize_test.cc.o"
  "CMakeFiles/visualize_test.dir/tests/visualize_test.cc.o.d"
  "visualize_test"
  "visualize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
