file(REMOVE_RECURSE
  "CMakeFiles/example_jboss_txn_patterns.dir/examples/jboss_txn_patterns.cpp.o"
  "CMakeFiles/example_jboss_txn_patterns.dir/examples/jboss_txn_patterns.cpp.o.d"
  "example_jboss_txn_patterns"
  "example_jboss_txn_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_jboss_txn_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
