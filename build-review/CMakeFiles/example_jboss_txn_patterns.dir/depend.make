# Empty dependencies file for example_jboss_txn_patterns.
# This may be replaced when dependencies are built.
