# Empty compiler generated dependencies file for twoevent_test.
# This may be replaced when dependencies are built.
