file(REMOVE_RECURSE
  "CMakeFiles/twoevent_test.dir/tests/twoevent_test.cc.o"
  "CMakeFiles/twoevent_test.dir/tests/twoevent_test.cc.o.d"
  "twoevent_test"
  "twoevent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twoevent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
