# Empty compiler generated dependencies file for episode_test.
# This may be replaced when dependencies are built.
