file(REMOVE_RECURSE
  "CMakeFiles/episode_test.dir/tests/episode_test.cc.o"
  "CMakeFiles/episode_test.dir/tests/episode_test.cc.o.d"
  "episode_test"
  "episode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/episode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
