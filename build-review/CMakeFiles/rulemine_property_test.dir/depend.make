# Empty dependencies file for rulemine_property_test.
# This may be replaced when dependencies are built.
