file(REMOVE_RECURSE
  "CMakeFiles/rulemine_property_test.dir/tests/rulemine_property_test.cc.o"
  "CMakeFiles/rulemine_property_test.dir/tests/rulemine_property_test.cc.o.d"
  "rulemine_property_test"
  "rulemine_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulemine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
