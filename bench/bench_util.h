// Shared helpers for the figure-regeneration benchmarks.
//
// Every bench binary prints a self-contained table to stdout and exits 0.
// The dataset scale is selected with the SPECMINE_BENCH_SCALE environment
// variable:
//   (unset) / "ci"  — a scaled-down QUEST dataset so the whole suite runs
//                     in seconds (the default used by test_output /
//                     bench_output capture);
//   "paper"         — the paper's D5C20N10S20 dataset (Section 6); the
//                     full-set miners then take minutes at the lowest
//                     thresholds, as in the original study.

#ifndef SPECMINE_BENCH_BENCH_UTIL_H_
#define SPECMINE_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/support/stopwatch.h"
#include "src/synth/quest_generator.h"
#include "src/trace/binary_format.h"
#include "src/trace/database_stats.h"
#include "src/trace/shard_set.h"
#include "src/trace/trace_io.h"

namespace specmine {
namespace bench {

/// \brief True iff SPECMINE_BENCH_SCALE=paper.
inline bool PaperScale() {
  const char* env = std::getenv("SPECMINE_BENCH_SCALE");
  return env != nullptr && std::string(env) == "paper";
}

/// \brief The QUEST dataset used by the synthetic benchmarks: the paper's
/// D5C20N10S20 at paper scale, a proportionally shaped smaller instance
/// otherwise.
inline QuestParams BenchQuestParams() {
  if (PaperScale()) {
    QuestParams p = QuestParams::D5C20N10S20();
    // Near-verbatim planted patterns: the redundancy regime of the paper's
    // experiments (a planted pattern's subsequences all share its support
    // and are absorbed by the closed/NR representation).
    p.corruption_probability = 0.03;
    p.interleave_probability = 0.15;
    p.zipf_exponent = 0.5;
    return p;
  }
  QuestParams p;
  p.d_sequences_thousands = 0.5;   // 500 sequences.
  p.c_avg_sequence_length = 25.0;
  p.n_events_thousands = 1.0;      // 1000 distinct events.
  p.s_avg_pattern_length = 10.0;
  p.num_seed_patterns = 150;
  p.corruption_probability = 0.03;
  p.interleave_probability = 0.15;
  p.zipf_exponent = 0.5;
  return p;
}

/// \brief Generates the benchmark dataset, printing its shape.
inline SequenceDatabase MakeBenchDatabase() {
  QuestParams params = BenchQuestParams();
  Result<SequenceDatabase> db = GenerateQuest(params);
  if (!db.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("dataset %s: %s\n", params.Label().c_str(),
              ComputeStats(*db).ToString().c_str());
  return db.TakeValueOrDie();
}

/// \brief The on-disk twins of \p db for the load benchmarks: the same
/// corpus as plain text and as a packed .smdb file.
struct LoadBenchFiles {
  std::string text_path;
  std::string smdb_path;
};

/// \brief Writes \p db as <stem>.txt and <stem>.smdb in the working
/// directory (exits on IO failure — benches have no error channel).
inline LoadBenchFiles WriteLoadBenchFiles(const SequenceDatabase& db,
                                          const std::string& stem) {
  LoadBenchFiles files{stem + ".txt", stem + kSmdbExtension};
  Status text = WriteTextTraceFile(db, files.text_path);
  Status smdb = WriteBinaryDatabaseFile(db, files.smdb_path);
  if (!text.ok() || !smdb.ok()) {
    std::fprintf(stderr, "cannot write load-bench files: %s / %s\n",
                 text.ToString().c_str(), smdb.ToString().c_str());
    std::exit(1);
  }
  return files;
}

/// \brief The scaled fig1 corpus, replicated per module with
/// module-prefixed event names ("m3.ev17") — the modular multi-component
/// corpus shape sharding serves (each module = one component's traces,
/// disjoint alphabets). Module m uses the bench QUEST parameters with
/// seed + m, so modules differ but the whole corpus is reproducible.
/// \p module_starts, when non-null, receives the trace index at which
/// each module begins — the shard cut points WriteShardBenchFiles uses.
inline SequenceDatabase MakeModularBenchDatabase(
    size_t modules, std::vector<size_t>* module_starts = nullptr) {
  SequenceDatabaseBuilder builder;
  for (size_t m = 0; m < modules; ++m) {
    if (module_starts != nullptr) module_starts->push_back(builder.size());
    QuestParams params = BenchQuestParams();
    params.seed += m;
    Result<SequenceDatabase> module_db = GenerateQuest(params);
    if (!module_db.ok()) {
      std::fprintf(stderr, "dataset generation failed: %s\n",
                   module_db.status().ToString().c_str());
      std::exit(1);
    }
    const std::string prefix = "m" + std::to_string(m) + ".";
    std::vector<std::string> names;
    for (EventSpan seq : *module_db) {
      names.clear();
      names.reserve(seq.size());
      for (EventId ev : seq) {
        names.push_back(prefix + module_db->dictionary().Name(ev));
      }
      builder.AddTrace(names);
    }
  }
  SequenceDatabase db = builder.Build();
  std::printf("modular corpus (%zu modules): %s\n", modules,
              ComputeStats(db).ToString().c_str());
  return db;
}

/// \brief The on-disk twins for the db_shard benchmarks: the modular
/// corpus as one .smdb and as a .smdbset with one shard per module (the
/// writer cuts at the \p module_starts boundaries, as per-component
/// packing runs would).
struct ShardBenchFiles {
  std::string smdb_path;
  std::string smdbset_path;
};

inline ShardBenchFiles WriteShardBenchFiles(
    const SequenceDatabase& db, const std::vector<size_t>& module_starts,
    const std::string& stem) {
  ShardBenchFiles files{stem + kSmdbExtension, stem + kSmdbSetExtension};
  Status smdb = WriteBinaryDatabaseFile(db, files.smdb_path);
  ShardWriter writer(files.smdbset_path);
  writer.AdoptDictionary(db.dictionary());
  Status set = Status::OK();
  size_t next_cut = 0;
  for (size_t s = 0; s < db.size() && set.ok(); ++s) {
    if (next_cut < module_starts.size() && s == module_starts[next_cut]) {
      set = writer.CutShard();
      ++next_cut;
    }
    if (set.ok()) {
      set = writer.AddSequence(db[static_cast<SeqId>(s)], db.dictionary());
    }
  }
  if (set.ok()) set = writer.Finish();
  if (!smdb.ok() || !set.ok()) {
    std::fprintf(stderr, "cannot write shard-bench files: %s / %s\n",
                 smdb.ToString().c_str(), set.ToString().c_str());
    std::exit(1);
  }
  return files;
}

/// \brief Times a callable returning a size (pattern/rule count).
template <typename Fn>
inline std::pair<double, size_t> TimedCount(Fn&& fn) {
  Stopwatch sw;
  size_t count = fn();
  return {sw.ElapsedSeconds(), count};
}

/// \brief Prints a horizontal separator sized for the figure tables.
inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// \brief Compiler barrier so timed expressions are not optimized away.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// \brief Machine-readable per-benchmark results, written as a JSON file so
/// successive PRs have a perf trajectory to compare against
/// (BENCH_core.json for the micro benchmarks).
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  /// \brief Records one benchmark result in nanoseconds per operation.
  void Record(const std::string& name, double ns_per_op) {
    entries_.emplace_back(name, ns_per_op);
  }

  /// \brief Writes {"benchmarks": [{"name": ..., "ns_per_op": ...}, ...]}.
  /// Returns false (with a message on stderr) on IO failure.
  bool Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.1f}%s\n",
                   entries_[i].first.c_str(), entries_[i].second,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu benchmarks)\n", path_.c_str(),
                entries_.size());
    return true;
  }

 private:
  std::string path_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// \brief Times \p fn (ns per call), auto-calibrating the iteration count
/// to fill ~\p budget_seconds of wall clock. Prints a table row and records
/// the result in \p report when non-null.
template <typename Fn>
inline double RunMicroBenchmark(const std::string& name, Fn&& fn,
                                JsonReport* report,
                                double budget_seconds = 0.25) {
  // Warm up and estimate the per-call cost.
  Stopwatch sw;
  int64_t calls = 0;
  do {
    fn();
    ++calls;
  } while (sw.ElapsedSeconds() < 0.01);
  double estimate = sw.ElapsedSeconds() / static_cast<double>(calls);
  int64_t iters = static_cast<int64_t>(budget_seconds / estimate);
  if (iters < 1) iters = 1;

  sw.Restart();
  for (int64_t i = 0; i < iters; ++i) fn();
  double ns = sw.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
  std::printf("%-28s %14.1f ns/op %12" PRId64 " iters\n", name.c_str(), ns,
              iters);
  if (report != nullptr) report->Record(name, ns);
  return ns;
}

}  // namespace bench
}  // namespace specmine

#endif  // SPECMINE_BENCH_BENCH_UTIL_H_
