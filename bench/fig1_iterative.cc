// Figure 1 — performance of iterative pattern mining: runtime (a) and
// number of mined patterns (b) for the Full and Closed miners across a
// min_sup sweep on the QUEST dataset (paper: D5C20N10S20, min_sup 0.10%
// .. 0.34% of sequences).
//
// Expected shape (paper Section 6): the closed miner dominates the full
// miner in both runtime and output size, with the gap widening as the
// threshold drops — the paper reports up to 92x (runtime) and 1250x
// (pattern count).

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/full_miner.h"
#include "src/specmine/visualize.h"

namespace specmine {
namespace {

int Run() {
  using bench::TimedCount;
  std::printf("=== Figure 1: iterative pattern mining, Full vs Closed ===\n");
  SequenceDatabase db = bench::MakeBenchDatabase();

  // Thresholds relative to |DB|, highest to lowest as in the paper's
  // x-axes (0.34% .. 0.10% at paper scale; proportionally higher on the
  // small CI dataset so the full set stays materializable).
  std::vector<double> fractions =
      bench::PaperScale()
          ? std::vector<double>{0.0034, 0.0031, 0.0028, 0.0025, 0.0010}
          : std::vector<double>{0.040, 0.030, 0.020, 0.014, 0.010};

  std::printf("%-10s %12s %12s %12s %12s %9s %9s\n", "min_sup", "full(s)",
              "closed(s)", "|Full|", "|Closed|", "t-ratio", "n-ratio");
  bench::PrintRule(82);
  std::vector<std::string> labels;
  ChartSeries full_time{"Full", {}}, closed_time{"Closed", {}};
  ChartSeries full_count{"Full", {}}, closed_count{"Closed", {}};
  for (double fraction : fractions) {
    uint64_t min_sup = static_cast<uint64_t>(fraction * db.size());
    if (min_sup == 0) min_sup = 1;

    IterMinerOptions full_options;
    full_options.min_support = min_sup;
    full_options.max_patterns = 20'000'000;
    IterMinerStats full_stats;
    auto [full_time_s, full_count_n] = TimedCount([&] {
      return MineFrequentIterative(db, full_options, &full_stats).size();
    });

    ClosedIterMinerOptions closed_options;
    closed_options.min_support = min_sup;
    IterMinerStats closed_stats;
    auto [closed_time_s, closed_count_n] = TimedCount([&] {
      return MineClosedIterative(db, closed_options, &closed_stats).size();
    });

    std::printf("%-9.3f%% %12.3f %12.3f %12zu %12zu %8.1fx %8.1fx%s\n",
                fraction * 100.0, full_time_s, closed_time_s, full_count_n,
                closed_count_n,
                closed_time_s > 0 ? full_time_s / closed_time_s : 0.0,
                closed_count_n > 0
                    ? static_cast<double>(full_count_n) /
                          static_cast<double>(closed_count_n)
                    : 0.0,
                full_stats.truncated ? "  [full truncated]" : "");
    char label[16];
    std::snprintf(label, sizeof(label), "%.2f%%", fraction * 100.0);
    labels.push_back(label);
    full_time.values.push_back(full_time_s);
    closed_time.values.push_back(closed_time_s);
    full_count.values.push_back(static_cast<double>(full_count_n));
    closed_count.values.push_back(static_cast<double>(closed_count_n));
  }
  std::printf("\n%s", RenderLogChart("Figure 1(a): runtime (s)", labels,
                                       {full_time, closed_time})
                           .c_str());
  std::printf("\n%s", RenderLogChart("Figure 1(b): |patterns|", labels,
                                       {full_count, closed_count})
                           .c_str());
  std::printf(
      "\npaper reference: closed mining up to 92x faster, up to 1250x fewer\n"
      "patterns than the full set, gap widening at low supports.\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
