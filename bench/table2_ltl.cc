// Table 2 — rules and their LTL equivalences, regenerated from the
// translator (and Table 1's operator meanings for reference).

#include <cstdio>

#include "src/ltl/translate.h"

namespace specmine {
namespace {

int Run() {
  EventDictionary dict;
  EventId a = dict.Intern("a");
  EventId b = dict.Intern("b");
  EventId c = dict.Intern("c");
  EventId d = dict.Intern("d");

  struct Row {
    const char* notation;
    Pattern pre;
    Pattern post;
  };
  const Row rows[] = {
      {"a -> b", Pattern{a}, Pattern{b}},
      {"<a, b> -> c", Pattern{a, b}, Pattern{c}},
      {"a -> <b, c>", Pattern{a}, Pattern{b, c}},
      {"<a, b> -> <c, d>", Pattern{a, b}, Pattern{c, d}},
  };

  std::printf("=== Table 2: rules and their LTL equivalences ===\n");
  std::printf("%-20s | %s\n", "Notation", "LTL Notation");
  std::printf("---------------------+--------------------------------------\n");
  for (const Row& row : rows) {
    LtlPtr f = RuleToLtl(row.pre, row.post, dict);
    std::printf("%-20s | %s\n", row.notation, f->ToString().c_str());
    if (!InMinableFragment(f)) {
      std::printf("ERROR: translation left the minable fragment\n");
      return 1;
    }
  }
  std::printf(
      "\n(Table 1 reference: G = globally, F = finally/eventually, X = at "
      "the\nnext event; the X in a -> <b, b> distinguishes repeated "
      "occurrences.)\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
