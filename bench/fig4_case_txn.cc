// Figure 4 — case study on the (simulated) JBoss transaction component:
// mine closed iterative patterns from test-suite traces and print the
// longest one, which should be the full connection-setup / tx-setup /
// commit / dispose protocol run of the paper's Figure 4.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/itermine/closed_miner.h"
#include "src/sim/test_suite.h"
#include "src/support/stopwatch.h"

namespace specmine {
namespace {

const char* const kBlockHeaders[] = {
    "Connection Set Up", "Tx Manager Set Up", "Transaction Set Up",
    "Transaction Commit", "Transaction Dispose"};
// First event index of each Figure-4 block (see sim::Figure4Pattern).
const size_t kBlockStarts[] = {0, 4, 8, 17, 27};

int Run() {
  std::printf(
      "=== Figure 4: longest iterative pattern, JBoss transaction "
      "component (simulated) ===\n");
  sim::TestSuiteOptions suite;
  suite.num_traces = bench::PaperScale() ? 500 : 100;
  suite.min_runs_per_trace = 1;
  // Capped at 2 so the longest closed pattern is the single-run protocol
  // of Figure 4 rather than a two-run concatenation (see DESIGN.md).
  suite.max_runs_per_trace = 2;
  suite.transaction.rollback_probability = 0.15;
  suite.transaction.noise_probability = 0.35;
  SequenceDatabase db = sim::GenerateTransactionTraces(suite);
  std::printf("traces: %zu, events: %zu, alphabet: %zu\n", db.size(),
              db.TotalEvents(), db.dictionary().size());

  ClosedIterMinerOptions options;
  // Commit runs are ~85% of transactions; 60% of traces is a safe floor.
  options.min_support = static_cast<uint64_t>(0.6 * db.size());
  Stopwatch sw;
  IterMinerStats stats;
  PatternSet closed = MineClosedIterative(db, options, &stats);
  double elapsed = sw.ElapsedSeconds();

  std::printf("closed patterns: %zu (nodes %zu, %0.3fs)\n", closed.size(),
              stats.nodes_visited, elapsed);
  if (closed.empty()) return 1;
  const MinedPattern& longest = closed.Longest();
  std::printf("\nlongest pattern (%zu events, support %llu):\n",
              longest.pattern.size(),
              static_cast<unsigned long long>(longest.support));
  size_t block = 0;
  for (size_t i = 0; i < longest.pattern.size(); ++i) {
    if (block < std::size(kBlockStarts) && i == kBlockStarts[block]) {
      std::printf("  -- %s --\n", kBlockHeaders[block]);
      ++block;
    }
    std::printf("  %s\n",
                db.dictionary().NameOrPlaceholder(longest.pattern[i]).c_str());
  }
  std::printf(
      "\npaper reference: the 32-event protocol run of Figure 4 "
      "(connection\nset up -> tx manager set up -> transaction set up -> "
      "commit -> dispose).\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
