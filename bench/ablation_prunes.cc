// Ablation (beyond the paper's figures): the contribution of each closed-
// miner ingredient — P1 (sound adjacent in-alphabet prefix prune), P2
// (heuristic adjacent out-of-alphabet prefix prune), and the infix
// profile check — plus the episode-mining contrast from Sections 1-2:
// windowed baselines cannot see far-apart lock/unlock constraints.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/episode/gap_episodes.h"
#include "src/episode/minepi.h"
#include "src/episode/winepi.h"
#include "src/itermine/closed_miner.h"
#include "src/itermine/qre_verifier.h"
#include "src/support/random.h"

namespace specmine {
namespace {

void RunConfig(const SequenceDatabase& db, uint64_t min_sup, bool p1, bool p2,
               bool p3, const char* label) {
  ClosedIterMinerOptions options;
  options.min_support = min_sup;
  options.prefix_prune = p1;
  options.aggressive_prefix_prune = p2;
  options.infix_prune = p3;
  Stopwatch sw;
  IterMinerStats stats;
  PatternSet out = MineClosedIterative(db, options, &stats);
  std::printf("%-24s %10.3f %10zu %10zu %10zu\n", label, sw.ElapsedSeconds(),
              out.size(), stats.nodes_visited, stats.subtrees_pruned);
}

int Run() {
  std::printf("=== Ablation: closed-miner pruning ingredients ===\n");
  SequenceDatabase db = bench::MakeBenchDatabase();
  const uint64_t min_sup = static_cast<uint64_t>(
      (bench::PaperScale() ? 0.0025 : 0.030) * db.size());

  std::printf("%-24s %10s %10s %10s %10s\n", "config", "time(s)", "patterns",
              "nodes", "pruned");
  bench::PrintRule(70);
  RunConfig(db, min_sup, false, false, false, "no subtree prunes");
  RunConfig(db, min_sup, true, false, false, "P1 (prefix) only");
  RunConfig(db, min_sup, true, true, false, "P1 + P2 (prefix)");
  RunConfig(db, min_sup, false, false, true, "P3 (infix) only");
  RunConfig(db, min_sup, true, true, true, "P1 + P2 + P3 (default)");

  std::printf(
      "\n=== Baseline contrast: far-apart constraints vs windowed episode "
      "mining ===\n");
  // lock .. unlock separated by a long critical section.
  SequenceDatabaseBuilder far_builder;
  Rng rng(99);
  for (int t = 0; t < 50; ++t) {
    Sequence seq;
    EventId lock = far_builder.mutable_dictionary()->Intern("lock");
    EventId unlock = far_builder.mutable_dictionary()->Intern("unlock");
    for (int r = 0; r < 2; ++r) {
      seq.Append(lock);
      int body = 8 + static_cast<int>(rng.Uniform(5));
      for (int i = 0; i < body; ++i) {
        seq.Append(far_builder.mutable_dictionary()->Intern(
            "work" + std::to_string(rng.Uniform(20))));
      }
      seq.Append(unlock);
    }
    far_builder.AddSequence(seq);
  }
  SequenceDatabase far = far_builder.Build();
  EventId lock = far.dictionary().Lookup("lock");
  EventId unlock = far.dictionary().Lookup("unlock");
  Pattern lock_unlock{lock, unlock};

  std::printf("traces: %zu, <lock, unlock> iterative support: %llu\n",
              far.size(),
              static_cast<unsigned long long>(CountInstances(lock_unlock, far)));
  std::printf("%-40s %12s\n", "method", "sees it?");
  bench::PrintRule(54);
  std::printf("%-40s %12s\n", "iterative patterns (no window)",
              CountInstances(lock_unlock, far) >= 100 ? "yes" : "NO");
  std::printf("%-40s %12s\n", "WINEPI, window 4",
              CountSupportingWindows(lock_unlock, far, 4) > 0 ? "yes" : "no");
  MinepiOptions minepi;
  minepi.max_window = 4;
  auto mos = FindMinimalOccurrences(lock_unlock, far);
  size_t bounded = 0;
  for (const auto& mo : mos) {
    if (mo.end - mo.start + 1 <= minepi.max_window) ++bounded;
  }
  std::printf("%-40s %12s\n", "MINEPI, window 4", bounded > 0 ? "yes" : "no");
  std::printf("%-40s %12s\n", "gap-constrained episodes, gap 4",
              CountGapOccurrences(lock_unlock, far, 4) > 0 ? "yes" : "no");
  std::printf(
      "\npaper reference (Secs. 1-2): iterative patterns 'break the window\n"
      "barrier'; episode mining misses events separated by arbitrary "
      "distance.\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
