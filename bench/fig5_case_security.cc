// Figure 5 — case study on the (simulated) JBoss security component: mine
// non-redundant recurrent rules from authentication traces and print the
// top rule, which should be the JAAS rule of the paper's Figure 5
// (configuration-lookup premise -> login/commit/principal-binding/use
// consequent), plus its LTL form.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/ltl/translate.h"
#include "src/rulemine/rule_miner.h"
#include "src/sim/test_suite.h"
#include "src/support/stopwatch.h"

namespace specmine {
namespace {

int Run() {
  std::printf(
      "=== Figure 5: recurrent rule, JBoss security component "
      "(simulated) ===\n");
  sim::TestSuiteOptions suite;
  suite.num_traces = bench::PaperScale() ? 500 : 100;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 3;
  suite.security.login_failure_probability = 0.05;
  suite.security.missing_entry_probability = 0.1;
  suite.security.direct_name_lookup_probability = 0.1;
  suite.security.noise_probability = 0.35;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  std::printf("traces: %zu, events: %zu, alphabet: %zu\n", db.size(),
              db.TotalEvents(), db.dictionary().size());

  RuleMinerOptions options;
  options.min_s_support = static_cast<uint64_t>(0.8 * db.size());
  options.min_confidence = 0.80;
  options.min_i_support = 1;
  options.non_redundant = true;
  Stopwatch sw;
  RuleMinerStats stats;
  RuleSet rules = MineRecurrentRules(db, options, &stats);
  double elapsed = sw.ElapsedSeconds();
  rules.SortByQuality();
  std::printf("non-redundant rules: %zu (premises %zu, %0.3fs)\n",
              rules.size(), stats.premises_enumerated, elapsed);
  if (rules.empty()) return 1;

  // Select the rule the paper reports: the one whose premise is the JAAS
  // configuration-lookup pair (several non-redundant rules share the same
  // maximal concatenation but differ in premise split and statistics);
  // fall back to the longest rule if the exact premise is absent.
  Pattern fig5_premise;
  for (const std::string& name : sim::Figure5Premise()) {
    fig5_premise = fig5_premise.Extend(db.dictionary().Lookup(name));
  }
  const Rule* best = &rules[0];
  for (const Rule& r : rules.rules()) {
    if (r.Concatenation().size() > best->Concatenation().size()) best = &r;
  }
  for (const Rule& r : rules.rules()) {
    if (r.premise == fig5_premise &&
        r.Concatenation().size() >= best->Concatenation().size()) {
      best = &r;
      break;
    }
  }
  std::printf("\n%-38s | %s\n", "Premise", "Consequent");
  bench::PrintRule(78);
  size_t n = std::max(best->premise.size(), best->consequent.size());
  for (size_t i = 0; i < n; ++i) {
    std::string pre =
        i < best->premise.size()
            ? db.dictionary().NameOrPlaceholder(best->premise[i])
            : "";
    std::string post =
        i < best->consequent.size()
            ? db.dictionary().NameOrPlaceholder(best->consequent[i])
            : "";
    std::printf("%-38s | %s\n", pre.c_str(), post.c_str());
  }
  std::printf("\nstats: s-sup=%llu, i-sup=%llu, conf=%.3f\n",
              static_cast<unsigned long long>(best->s_support),
              static_cast<unsigned long long>(best->i_support),
              best->confidence());
  std::printf("LTL: %s\n", RuleToLtl(*best, db.dictionary())->ToString().c_str());
  std::printf(
      "\npaper reference: Figure 5's JAAS authentication rule — premise\n"
      "XmlLoginCI.getConfEntry, AuthenInfo.getName; consequent login module\n"
      "invocation, principal binding, and principal/credential use.\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
