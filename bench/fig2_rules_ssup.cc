// Figure 2 — performance of recurrent rule mining while varying min_s-sup
// at min_conf = 50% and min_i-sup = 1: runtime (a) and number of mined
// rules (b), Full vs Non-Redundant.
//
// Expected shape (paper Section 6): NR mining dominates in both runtime
// and output size, with the gap widening as min_s-sup drops — the paper
// reports up to 147x (runtime) and 8500x (rule count).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/specmine/visualize.h"
#include "src/rulemine/rule_miner.h"

namespace specmine {
namespace {

int Run() {
  using bench::TimedCount;
  std::printf(
      "=== Figure 2: recurrent rules, Full vs NR (min_conf=50%%, "
      "min_i-sup=1) ===\n");
  SequenceDatabase db = bench::MakeBenchDatabase();

  // Paper sweep: 0.40% .. 0.60% of sequences.
  std::vector<double> fractions =
      bench::PaperScale()
          ? std::vector<double>{0.0060, 0.0055, 0.0050, 0.0045, 0.0040}
          : std::vector<double>{0.080, 0.070, 0.060, 0.050, 0.040};

  std::printf("%-12s %12s %12s %12s %12s %9s %9s\n", "min_s-sup", "full(s)",
              "NR(s)", "|Full|", "|NR|", "t-ratio", "n-ratio");
  bench::PrintRule(84);
  std::vector<std::string> chart_labels;
  ChartSeries full_time_series{"Full", {}}, nr_time_series{"NR", {}};
  ChartSeries full_count_series{"Full", {}}, nr_count_series{"NR", {}};
  for (double fraction : fractions) {
    uint64_t min_s_sup = static_cast<uint64_t>(fraction * db.size());
    if (min_s_sup == 0) min_s_sup = 1;

    RuleMinerOptions full_options;
    full_options.min_s_support = min_s_sup;
    full_options.min_confidence = 0.5;
    full_options.min_i_support = 1;
    full_options.non_redundant = false;
    full_options.max_rules = 5'000'000;
    RuleMinerStats full_stats;
    auto [full_time, full_count] = TimedCount([&] {
      return MineRecurrentRules(db, full_options, &full_stats).size();
    });

    RuleMinerOptions nr_options = full_options;
    nr_options.non_redundant = true;
    nr_options.max_rules = 0;
    RuleMinerStats nr_stats;
    auto [nr_time, nr_count] = TimedCount([&] {
      return MineRecurrentRules(db, nr_options, &nr_stats).size();
    });

    std::printf("%-11.3f%% %12.3f %12.3f %12zu %12zu %8.1fx %8.1fx%s\n",
                fraction * 100.0, full_time, nr_time, full_count, nr_count,
                nr_time > 0 ? full_time / nr_time : 0.0,
                nr_count > 0 ? static_cast<double>(full_count) /
                                   static_cast<double>(nr_count)
                             : 0.0,
                full_stats.truncated ? "  [full truncated]" : "");
    char chart_label[16];
    std::snprintf(chart_label, sizeof(chart_label), "%.2f%%", fraction * 100.0);
    chart_labels.push_back(chart_label);
    full_time_series.values.push_back(full_time);
    nr_time_series.values.push_back(nr_time);
    full_count_series.values.push_back(static_cast<double>(full_count));
    nr_count_series.values.push_back(static_cast<double>(nr_count));
  }
  std::printf("\n%s", RenderLogChart("Figure 2(a): runtime (s)", chart_labels,
                                       {full_time_series, nr_time_series})
                           .c_str());
  std::printf("\n%s", RenderLogChart("Figure 2(b): |rules|", chart_labels,
                                       {full_count_series, nr_count_series})
                           .c_str());
  std::printf(
      "\npaper reference: NR mining up to 147x faster, up to 8500x fewer\n"
      "rules than the full set, gap widening at low supports.\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
