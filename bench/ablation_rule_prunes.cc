// Ablation (beyond the paper's figures): the contribution of the rule
// miner's pruning ingredients — Step-1 generator (premise) pruning and
// Step-3 closed (consequent) pruning — measured independently. The final
// Definition-5.2 sweep is kept on in all configurations so every run
// produces the same non-redundant output; what changes is how much
// intermediate work the pipeline does.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/rulemine/consequent_miner.h"
#include "src/rulemine/premise_miner.h"
#include "src/rulemine/redundancy.h"
#include "src/rulemine/rule_miner.h"
#include "src/seqmine/occurrence_engine.h"

namespace specmine {
namespace {

// A rule-mining pipeline with independently switchable prunes (the public
// MineRecurrentRules couples them through `non_redundant`).
void RunConfig(const SequenceDatabase& db, uint64_t min_s_sup, double conf,
               bool maximality_pruning, bool closed_pruning,
               const char* label) {
  Stopwatch sw;
  PremiseMinerOptions premise_options;
  premise_options.min_s_support = min_s_sup;
  premise_options.maximality_pruning = maximality_pruning;
  ConsequentMinerOptions consequent_options;
  consequent_options.min_confidence = conf;
  consequent_options.closed_pruning = closed_pruning;

  size_t premises = 0;
  size_t candidates = 0;
  RuleSet rules;
  ScanPremises(db, premise_options,
               [&](const Pattern& pre, const TemporalPointSet& points) {
                 ++premises;
                 PatternSet posts =
                     MineConsequents(db, points, consequent_options);
                 for (const MinedPattern& post : posts.items()) {
                   Rule rule;
                   rule.premise = pre;
                   rule.consequent = post.pattern;
                   rule.s_support = points.SupportingSequences();
                   rule.premise_points = points.TotalPoints();
                   rule.satisfied_points = post.support;
                   rule.i_support =
                       CountOccurrences(rule.Concatenation(), db);
                   rules.Add(std::move(rule));
                   ++candidates;
                 }
                 return true;
               });
  RuleSet nr = RemoveRedundantRules(rules, RedundancyOptions{});
  std::printf("%-32s %10.3f %10zu %12zu %10zu\n", label, sw.ElapsedSeconds(),
              premises, candidates, nr.size());
}

int Run() {
  std::printf("=== Ablation: rule-miner pruning ingredients ===\n");
  SequenceDatabase db = bench::MakeBenchDatabase();
  const uint64_t min_s_sup = static_cast<uint64_t>(
      (bench::PaperScale() ? 0.0060 : 0.070) * db.size());
  const double conf = 0.5;
  std::printf("min_s-sup=%llu, min_conf=%.0f%%\n",
              static_cast<unsigned long long>(min_s_sup), conf * 100);

  std::printf("%-32s %10s %10s %12s %10s\n", "config", "time(s)", "premises",
              "candidates", "NR rules");
  bench::PrintRule(80);
  RunConfig(db, min_s_sup, conf, false, false, "no pruning (late filter)");
  RunConfig(db, min_s_sup, conf, true, false, "maximal premises only");
  RunConfig(db, min_s_sup, conf, false, true, "closed consequents only");
  RunConfig(db, min_s_sup, conf, true, true, "both (default NR pipeline)");
  std::printf(
      "\nAll configurations end with the same Definition-5.2 sweep; early\n"
      "pruning pays off in intermediate candidate counts and runtime\n"
      "(the paper's 'late removal of redundant rules is inefficient').\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
