// Figure 3 — performance of recurrent rule mining while varying min_conf
// at min_s-sup = 0.4% and min_i-sup = 1: runtime (a) and number of mined
// rules (b), Full vs Non-Redundant.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/specmine/visualize.h"
#include "src/rulemine/rule_miner.h"

namespace specmine {
namespace {

int Run() {
  using bench::TimedCount;
  std::printf(
      "=== Figure 3: recurrent rules, Full vs NR (min_s-sup fixed, "
      "min_i-sup=1) ===\n");
  SequenceDatabase db = bench::MakeBenchDatabase();

  const double s_sup_fraction = bench::PaperScale() ? 0.0040 : 0.050;
  uint64_t min_s_sup = static_cast<uint64_t>(s_sup_fraction * db.size());
  if (min_s_sup == 0) min_s_sup = 1;
  std::printf("min_s-sup = %.3f%% (%llu sequences)\n", s_sup_fraction * 100.0,
              static_cast<unsigned long long>(min_s_sup));

  // Paper sweep: 50% .. 90% confidence.
  const std::vector<double> confidences{0.9, 0.8, 0.7, 0.6, 0.5};

  std::printf("%-10s %12s %12s %12s %12s %9s %9s\n", "min_conf", "full(s)",
              "NR(s)", "|Full|", "|NR|", "t-ratio", "n-ratio");
  bench::PrintRule(82);
  std::vector<std::string> chart_labels;
  ChartSeries full_time_series{"Full", {}}, nr_time_series{"NR", {}};
  ChartSeries full_count_series{"Full", {}}, nr_count_series{"NR", {}};
  for (double conf : confidences) {
    RuleMinerOptions full_options;
    full_options.min_s_support = min_s_sup;
    full_options.min_confidence = conf;
    full_options.min_i_support = 1;
    full_options.non_redundant = false;
    full_options.max_rules = 5'000'000;
    RuleMinerStats full_stats;
    auto [full_time, full_count] = TimedCount([&] {
      return MineRecurrentRules(db, full_options, &full_stats).size();
    });

    RuleMinerOptions nr_options = full_options;
    nr_options.non_redundant = true;
    nr_options.max_rules = 0;
    auto [nr_time, nr_count] = TimedCount(
        [&] { return MineRecurrentRules(db, nr_options).size(); });

    std::printf("%-9.0f%% %12.3f %12.3f %12zu %12zu %8.1fx %8.1fx%s\n",
                conf * 100.0, full_time, nr_time, full_count, nr_count,
                nr_time > 0 ? full_time / nr_time : 0.0,
                nr_count > 0 ? static_cast<double>(full_count) /
                                   static_cast<double>(nr_count)
                             : 0.0,
                full_stats.truncated ? "  [full truncated]" : "");
    char chart_label[16];
    std::snprintf(chart_label, sizeof(chart_label), "%.0f%%", conf * 100.0);
    chart_labels.push_back(chart_label);
    full_time_series.values.push_back(full_time);
    nr_time_series.values.push_back(nr_time);
    full_count_series.values.push_back(static_cast<double>(full_count));
    nr_count_series.values.push_back(static_cast<double>(nr_count));
  }
  std::printf("\n%s", RenderLogChart("Figure 3(a): runtime (s)", chart_labels,
                                       {full_time_series, nr_time_series})
                           .c_str());
  std::printf("\n%s", RenderLogChart("Figure 3(b): |rules|", chart_labels,
                                       {full_count_series, nr_count_series})
                           .c_str());
  std::printf(
      "\npaper reference: rule counts and runtimes grow as min_conf drops;\n"
      "NR stays orders of magnitude below Full throughout the sweep.\n");
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
