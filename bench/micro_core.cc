// Microbenchmarks of the hot paths shared by every miner: position-index
// construction, QRE instance projection, temporal point computation,
// subsequence embedding, and instance verification.
//
// Results are printed as a table and written to BENCH_core.json (ns/op per
// benchmark) so successive changes have a perf trajectory to compare
// against.

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/itermine/bitmap_index.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/rulemine/temporal_points.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/synth/quest_generator.h"

namespace specmine {
namespace {

using bench::DoNotOptimize;
using bench::JsonReport;
using bench::RunMicroBenchmark;

const SequenceDatabase& Db() {
  static SequenceDatabase* db = [] {
    QuestParams p;
    p.d_sequences_thousands = 0.2;
    p.c_avg_sequence_length = 25;
    p.n_events_thousands = 0.3;
    p.s_avg_pattern_length = 6;
    p.num_seed_patterns = 60;
    return new SequenceDatabase(GenerateQuest(p).TakeValueOrDie());
  }();
  return *db;
}

// The most frequent event and a frequent two-event pattern, discovered
// once and reused by the benchmarks below.
EventId HottestEvent() {
  static EventId ev = [] {
    PositionIndex index(Db());
    EventId best = 0;
    for (EventId e = 0; e < Db().dictionary().size(); ++e) {
      if (index.TotalCount(e) > index.TotalCount(best)) best = e;
    }
    return best;
  }();
  return ev;
}

Pattern HotPattern() {
  PositionIndex index(Db());
  Pattern p{HottestEvent()};
  auto ext = ForwardExtensions(index, p, SingleEventInstances(index, p[0]));
  EventId best = kInvalidEvent;
  size_t best_count = 0;
  for (const auto& [ev, instances] : ext) {
    if (instances.size() > best_count) {
      best = ev;
      best_count = instances.size();
    }
  }
  return best == kInvalidEvent ? p : p.Extend(best);
}

int Run() {
  const SequenceDatabase& db = Db();
  PositionIndex index(db);
  const EventId hottest = HottestEvent();
  const Pattern hot = HotPattern();
  const InstanceList hot_instances = FindAllInstances(hot, db);

  std::printf("=== micro_core: shared hot-path benchmarks ===\n");
  JsonReport report("BENCH_core.json");

  RunMicroBenchmark(
      "PositionIndexBuild",
      [&] {
        PositionIndex ix(db);
        DoNotOptimize(ix.num_events());
      },
      &report);

  RunMicroBenchmark(
      "SingleEventInstances",
      [&] { DoNotOptimize(SingleEventInstances(index, hottest).size()); },
      &report);

  const double csr_forward_cold_ns = RunMicroBenchmark(
      "ForwardExtensions",
      [&] {
        DoNotOptimize(ForwardExtensions(index, hot, hot_instances).size());
      },
      &report);

  RunMicroBenchmark(
      "BackwardExtensions",
      [&] {
        DoNotOptimize(BackwardExtensions(index, hot, hot_instances).size());
      },
      &report);

  // The miners' steady state: one workspace reused across every node, so
  // the projection runs allocation-free.
  ProjectionWorkspace ws;
  ForwardExtensionMap forward_out;
  RunMicroBenchmark(
      "ForwardExtensionsReuse",
      [&] {
        ForwardExtensions(index, hot, hot_instances, &ws, &forward_out);
        DoNotOptimize(forward_out.size());
        ws.forward.Recycle(std::move(forward_out));
      },
      &report);

  RunMicroBenchmark(
      "BackwardExtensionsReuse",
      [&] {
        DoNotOptimize(
            BackwardExtensions(index, hot, hot_instances, &ws).size());
      },
      &report);

  RunMicroBenchmark(
      "QreFindInstances",
      [&] { DoNotOptimize(FindAllInstances(hot, db).size()); }, &report);

  RunMicroBenchmark(
      "TemporalPoints",
      [&] { DoNotOptimize(ComputeTemporalPoints(hot, db).TotalPoints()); },
      &report);

  RunMicroBenchmark(
      "EarliestEmbedding",
      [&] {
        size_t hits = 0;
        for (EventSpan seq : db) {
          if (EmbedsAt(hot, seq, 0)) ++hits;
        }
        DoNotOptimize(hits);
      },
      &report);

  RunMicroBenchmark(
      "CountOccurrences", [&] { DoNotOptimize(CountOccurrences(hot, db)); },
      &report);

  // --- the vertical bitmap backend on the same (dense, fig1-style QUEST)
  // corpus. The cold benchmarks construct a fresh workspace per call like
  // their CSR twins above; the chooser line documents what `auto` picks.
  std::printf("--- bitmap backend (auto on this corpus: %s) ---\n",
              BackendKindName(ChooseBackendKind(db)));
  BitmapIndex bitmap_index(db);
  const CountingBackend bitmap_backend(bitmap_index);

  RunMicroBenchmark(
      "BitmapIndexBuild",
      [&] {
        BitmapIndex ix(db);
        DoNotOptimize(ix.num_events());
      },
      &report);

  const double bitmap_forward_cold_ns = RunMicroBenchmark(
      "BitmapForwardExtensions",
      [&] {
        ProjectionWorkspace cold;
        ForwardExtensionMap out;
        ForwardExtensions(bitmap_backend, hot, hot_instances, &cold, &out);
        DoNotOptimize(out.size());
      },
      &report);

  ProjectionWorkspace bitmap_ws;
  ForwardExtensionMap bitmap_forward_out;
  RunMicroBenchmark(
      "BitmapForwardExtensionsReuse",
      [&] {
        ForwardExtensions(bitmap_backend, hot, hot_instances, &bitmap_ws,
                          &bitmap_forward_out);
        DoNotOptimize(bitmap_forward_out.size());
        bitmap_ws.forward.Recycle(std::move(bitmap_forward_out));
      },
      &report);

  RunMicroBenchmark(
      "BitmapBackwardExtensionsReuse",
      [&] {
        DoNotOptimize(
            BackwardExtensions(bitmap_backend, hot, hot_instances, &bitmap_ws)
                .size());
      },
      &report);

  RunMicroBenchmark(
      "BitmapQreCountInstances",
      [&] { DoNotOptimize(CountInstances(bitmap_backend, hot)); }, &report);

  RunMicroBenchmark(
      "BitmapCountOccurrences",
      [&] { DoNotOptimize(CountOccurrences(bitmap_backend, hot)); },
      &report);

  std::printf(
      "forward cold speedup: %.1fx (csr %.1f us -> bitmap %.1f us)\n",
      csr_forward_cold_ns / bitmap_forward_cold_ns,
      csr_forward_cold_ns / 1e3, bitmap_forward_cold_ns / 1e3);

  // --- the sparse synthetic corpus (huge alphabet, rare events — mean
  // occurrences ~2): the regime where the CSR index wins the miners'
  // steady state (the bitmap's events x words table falls out of cache,
  // so every per-event row touch misses) and `auto` must say so. Both
  // backends are measured workspace-reusing — the state the miners
  // actually run in — so the crossover `auto` encodes is in the record.
  std::printf("--- sparse corpus (auto must pick csr) ---\n");
  const SequenceDatabase sparse = [] {
    QuestParams p;
    p.d_sequences_thousands = 2.0;   // 2000 sequences.
    p.c_avg_sequence_length = 20;
    p.n_events_thousands = 20.0;     // ~20k distinct events.
    p.s_avg_pattern_length = 4;
    p.num_seed_patterns = 40;
    return GenerateQuest(p).TakeValueOrDie();
  }();
  PositionIndex sparse_csr(sparse);
  BitmapIndex sparse_bitmap(sparse);
  std::printf(
      "sparse corpus: auto picks %s (mean occurrences %.2f, bitmap table "
      "%.1f MB)\n",
      BackendKindName(ChooseBackendKind(sparse)),
      static_cast<double>(sparse.TotalEvents()) /
          static_cast<double>(sparse.dictionary().size()),
      static_cast<double>(sparse_bitmap.table_bytes()) / 1e6);
  EventId sparse_hottest = 0;
  for (EventId e = 0; e < sparse.dictionary().size(); ++e) {
    if (sparse_csr.TotalCount(e) > sparse_csr.TotalCount(sparse_hottest)) {
      sparse_hottest = e;
    }
  }
  const Pattern sparse_hot{sparse_hottest};
  const InstanceList sparse_instances = FindAllInstances(sparse_hot, sparse);
  ProjectionWorkspace sparse_ws;
  ForwardExtensionMap sparse_out;
  RunMicroBenchmark(
      "SparseForwardExtensionsCsr",
      [&] {
        ForwardExtensions(sparse_csr, sparse_hot, sparse_instances,
                          &sparse_ws, &sparse_out);
        DoNotOptimize(sparse_out.size());
        sparse_ws.forward.Recycle(std::move(sparse_out));
      },
      &report);
  ProjectionWorkspace sparse_bitmap_ws;
  RunMicroBenchmark(
      "SparseForwardExtensionsBitmap",
      [&] {
        ForwardExtensions(CountingBackend(sparse_bitmap), sparse_hot,
                          sparse_instances, &sparse_bitmap_ws, &sparse_out);
        DoNotOptimize(sparse_out.size());
        sparse_bitmap_ws.forward.Recycle(std::move(sparse_out));
      },
      &report);

  // db_load: text parse vs .smdb mmap, on the fig1 corpus (the dataset the
  // figure benchmarks mine). The packed open only materializes the
  // dictionary and validates offsets; the arena is mapped, not parsed.
  std::printf("--- db_load (fig1 corpus) ---\n");
  const SequenceDatabase fig1 = bench::MakeBenchDatabase();
  const bench::LoadBenchFiles files =
      bench::WriteLoadBenchFiles(fig1, "bench_db_load");
  const double text_ns = RunMicroBenchmark(
      "DbLoadTextParse",
      [&] {
        Result<SequenceDatabase> loaded = ReadTextTraceFile(files.text_path);
        DoNotOptimize(loaded->TotalEvents());
      },
      &report);
  const double smdb_ns = RunMicroBenchmark(
      "DbLoadSmdbMmap",
      [&] {
        Result<MappedDatabase> mapped = MappedDatabase::Open(files.smdb_path);
        DoNotOptimize(mapped->db().TotalEvents());
      },
      &report);
  std::printf("db_load speedup: %.1fx (text %.1f us -> smdb %.1f us)\n",
              text_ns / smdb_ns, text_ns / 1e3, smdb_ns / 1e3);

  // db_shard: the same full-pattern mining task, end to end (open +
  // index + mine), over the modular scaled-fig1 corpus — as one .smdb
  // (single-file pass) versus as a per-module .smdbset on the sharded
  // execution path. Sharding wins twice: the per-shard position indexes
  // are events_i x sequences_i instead of one events x sequences table
  // (a ~modules-fold smaller working set for disjoint module alphabets),
  // and the shards mine concurrently on the pool on multi-core hosts.
  std::printf("--- db_shard (modular fig1 corpus) ---\n");
  constexpr size_t kModules = 8;
  std::vector<size_t> module_starts;
  const SequenceDatabase modular =
      bench::MakeModularBenchDatabase(kModules, &module_starts);
  const bench::ShardBenchFiles shard_files =
      bench::WriteShardBenchFiles(modular, module_starts, "bench_db_shard");
  FullPatternsTask shard_task;
  shard_task.options.min_support = 60;
  size_t single_patterns = 0, sharded_patterns = 0;
  const double single_ns = RunMicroBenchmark(
      "DbShardSingleFile",
      [&] {
        Result<Engine> engine =
            Engine::FromBinaryFile(shard_files.smdb_path);
        Result<PatternSet> mined = engine->CollectPatterns(shard_task);
        single_patterns = mined->size();
        DoNotOptimize(single_patterns);
      },
      &report, 1.0);
  const double sharded_ns = RunMicroBenchmark(
      "DbShardParallel",
      [&] {
        Result<Engine> engine =
            Engine::FromShardSet(shard_files.smdbset_path);
        CollectingPatternSink sink;
        Result<RunReport> run = engine->MineSharded(shard_task, sink);
        sharded_patterns = sink.set().size();
        DoNotOptimize(run->patterns_emitted);
      },
      &report, 1.0);
  std::printf(
      "db_shard speedup: %.1fx (single %.1f ms -> sharded %.1f ms), "
      "%zu == %zu patterns\n",
      single_ns / sharded_ns, single_ns / 1e6, sharded_ns / 1e6,
      single_patterns, sharded_patterns);
  if (single_patterns != sharded_patterns) {
    std::fprintf(stderr,
                 "db_shard: sharded mining diverged from single-file!\n");
    return 1;
  }

  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
