// Microbenchmarks (google-benchmark) of the hot paths shared by every
// miner: position-index construction, QRE instance projection, temporal
// point computation, subsequence embedding, and instance verification.

#include <benchmark/benchmark.h>

#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/rulemine/temporal_points.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/synth/quest_generator.h"

namespace specmine {
namespace {

const SequenceDatabase& Db() {
  static SequenceDatabase* db = [] {
    QuestParams p;
    p.d_sequences_thousands = 0.2;
    p.c_avg_sequence_length = 25;
    p.n_events_thousands = 0.3;
    p.s_avg_pattern_length = 6;
    p.num_seed_patterns = 60;
    return new SequenceDatabase(GenerateQuest(p).TakeValueOrDie());
  }();
  return *db;
}

// The most frequent event and a frequent two-event pattern, discovered
// once and reused by the benchmarks below.
EventId HottestEvent() {
  static EventId ev = [] {
    PositionIndex index(Db());
    EventId best = 0;
    for (EventId e = 0; e < Db().dictionary().size(); ++e) {
      if (index.TotalCount(e) > index.TotalCount(best)) best = e;
    }
    return best;
  }();
  return ev;
}

Pattern HotPattern() {
  PositionIndex index(Db());
  Pattern p{HottestEvent()};
  auto ext = ForwardExtensions(index, p, SingleEventInstances(index, p[0]));
  EventId best = kInvalidEvent;
  size_t best_count = 0;
  for (const auto& [ev, instances] : ext) {
    if (instances.size() > best_count) {
      best = ev;
      best_count = instances.size();
    }
  }
  return best == kInvalidEvent ? p : p.Extend(best);
}

void BM_PositionIndexBuild(benchmark::State& state) {
  const SequenceDatabase& db = Db();
  for (auto _ : state) {
    PositionIndex index(db);
    benchmark::DoNotOptimize(index.num_events());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.TotalEvents()));
}
BENCHMARK(BM_PositionIndexBuild);

void BM_SingleEventInstances(benchmark::State& state) {
  PositionIndex index(Db());
  EventId ev = HottestEvent();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SingleEventInstances(index, ev).size());
  }
}
BENCHMARK(BM_SingleEventInstances);

void BM_ForwardExtensions(benchmark::State& state) {
  PositionIndex index(Db());
  Pattern p = HotPattern();
  InstanceList instances = FindAllInstances(p, Db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForwardExtensions(index, p, instances).size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(instances.size()));
}
BENCHMARK(BM_ForwardExtensions);

void BM_BackwardExtensions(benchmark::State& state) {
  PositionIndex index(Db());
  Pattern p = HotPattern();
  InstanceList instances = FindAllInstances(p, Db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BackwardExtensions(index, p, instances).size());
  }
}
BENCHMARK(BM_BackwardExtensions);

void BM_QreFindInstances(benchmark::State& state) {
  Pattern p = HotPattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindAllInstances(p, Db()).size());
  }
}
BENCHMARK(BM_QreFindInstances);

void BM_TemporalPoints(benchmark::State& state) {
  Pattern p = HotPattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTemporalPoints(p, Db()).TotalPoints());
  }
}
BENCHMARK(BM_TemporalPoints);

void BM_EarliestEmbedding(benchmark::State& state) {
  Pattern p = HotPattern();
  const SequenceDatabase& db = Db();
  for (auto _ : state) {
    size_t hits = 0;
    for (const Sequence& seq : db.sequences()) {
      if (EmbedsAt(p, seq, 0)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.size()));
}
BENCHMARK(BM_EarliestEmbedding);

void BM_CountOccurrences(benchmark::State& state) {
  Pattern p = HotPattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountOccurrences(p, Db()));
  }
}
BENCHMARK(BM_CountOccurrences);

}  // namespace
}  // namespace specmine

BENCHMARK_MAIN();
