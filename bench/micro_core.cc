// Microbenchmarks of the hot paths shared by every miner: position-index
// construction, QRE instance projection, temporal point computation,
// subsequence embedding, and instance verification.
//
// Results are printed as a table and written to BENCH_core.json (ns/op per
// benchmark) so successive changes have a perf trajectory to compare
// against.

#include <algorithm>
#include <chrono>
#include <fstream>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/engine/phase1_cache.h"
#include "src/itermine/bitmap_index.h"
#include "src/itermine/hybrid_index.h"
#include "src/itermine/merged_index.h"
#include "src/itermine/projection.h"
#include "src/itermine/qre_verifier.h"
#include "src/itermine/simd_kernels.h"
#include "src/rulemine/temporal_points.h"
#include "src/seqmine/occurrence_engine.h"
#include "src/synth/quest_generator.h"
#include "src/trace/append_session.h"

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <memory>

namespace specmine {
namespace {

using bench::DoNotOptimize;
using bench::JsonReport;
using bench::RunMicroBenchmark;

const SequenceDatabase& Db() {
  static SequenceDatabase* db = [] {
    QuestParams p;
    p.d_sequences_thousands = 0.2;
    p.c_avg_sequence_length = 25;
    p.n_events_thousands = 0.3;
    p.s_avg_pattern_length = 6;
    p.num_seed_patterns = 60;
    return new SequenceDatabase(GenerateQuest(p).TakeValueOrDie());
  }();
  return *db;
}

// The most frequent event and a frequent two-event pattern, discovered
// once and reused by the benchmarks below.
EventId HottestEvent() {
  static EventId ev = [] {
    PositionIndex index(Db());
    EventId best = 0;
    for (EventId e = 0; e < Db().dictionary().size(); ++e) {
      if (index.TotalCount(e) > index.TotalCount(best)) best = e;
    }
    return best;
  }();
  return ev;
}

// Per-shard counting backends in shard order, each chosen the way the
// engine's auto mode would, plus the storage that keeps them alive — the
// input of the lazy merged-view benchmarks.
struct ShardBackendSet {
  std::vector<std::unique_ptr<PositionIndex>> csr;
  std::vector<std::unique_ptr<BitmapIndex>> bitmap;
  std::vector<std::unique_ptr<HybridIndex>> hybrid;
  std::vector<CountingBackend> backends;
};

ShardBackendSet BuildShardBackends(const ShardedDatabase& set) {
  ShardBackendSet out;
  for (size_t i = 0; i < set.num_shards(); ++i) {
    const SequenceDatabase& shard = set.shard(i);
    switch (ChooseBackendKind(shard)) {
      case BackendKind::kBitmap:
        out.bitmap.push_back(std::make_unique<BitmapIndex>(shard));
        out.backends.emplace_back(*out.bitmap.back());
        break;
      case BackendKind::kHybrid:
        out.hybrid.push_back(std::make_unique<HybridIndex>(shard));
        out.backends.emplace_back(*out.hybrid.back());
        break;
      default:
        out.csr.push_back(std::make_unique<PositionIndex>(shard));
        out.backends.emplace_back(*out.csr.back());
        break;
    }
  }
  return out;
}

#if defined(__linux__)
// Peak resident set (VmHWM) of the calling process, in KB.
uint64_t ReadVmHwmKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %" SCNu64 " kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

// Runs \p body in a forked child and returns the child's peak RSS in KB.
// Forking isolates the probe: both strategies start from the same
// inherited baseline, so the delta is the cost of the strategy itself.
template <typename Fn>
double PeakRssProbeKb(Fn&& body) {
  int fds[2];
  if (pipe(fds) != 0) return 0;
  const pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    body();
    const uint64_t kb = ReadVmHwmKb();
    const ssize_t n = write(fds[1], &kb, sizeof(kb));
    _exit(n == sizeof(kb) ? 0 : 1);
  }
  close(fds[1]);
  uint64_t kb = 0;
  if (pid > 0 && read(fds[0], &kb, sizeof(kb)) != sizeof(kb)) kb = 0;
  close(fds[0]);
  int status = 0;
  if (pid > 0) waitpid(pid, &status, 0);
  return static_cast<double>(kb);
}
#endif  // defined(__linux__)

Pattern HotPattern() {
  PositionIndex index(Db());
  Pattern p{HottestEvent()};
  auto ext = ForwardExtensions(index, p, SingleEventInstances(index, p[0]));
  EventId best = kInvalidEvent;
  size_t best_count = 0;
  for (const auto& [ev, instances] : ext) {
    if (instances.size() > best_count) {
      best = ev;
      best_count = instances.size();
    }
  }
  return best == kInvalidEvent ? p : p.Extend(best);
}

int Run() {
  const SequenceDatabase& db = Db();
  PositionIndex index(db);
  const EventId hottest = HottestEvent();
  const Pattern hot = HotPattern();
  const InstanceList hot_instances = FindAllInstances(hot, db);

  std::printf("=== micro_core: shared hot-path benchmarks ===\n");
  JsonReport report("BENCH_core.json");

  RunMicroBenchmark(
      "PositionIndexBuild",
      [&] {
        PositionIndex ix(db);
        DoNotOptimize(ix.num_events());
      },
      &report);

  RunMicroBenchmark(
      "SingleEventInstances",
      [&] { DoNotOptimize(SingleEventInstances(index, hottest).size()); },
      &report);

  const double csr_forward_cold_ns = RunMicroBenchmark(
      "ForwardExtensions",
      [&] {
        DoNotOptimize(ForwardExtensions(index, hot, hot_instances).size());
      },
      &report);

  RunMicroBenchmark(
      "BackwardExtensions",
      [&] {
        DoNotOptimize(BackwardExtensions(index, hot, hot_instances).size());
      },
      &report);

  // The miners' steady state: one workspace reused across every node, so
  // the projection runs allocation-free.
  ProjectionWorkspace ws;
  ForwardExtensionMap forward_out;
  RunMicroBenchmark(
      "ForwardExtensionsReuse",
      [&] {
        ForwardExtensions(index, hot, hot_instances, &ws, &forward_out);
        DoNotOptimize(forward_out.size());
        ws.forward.Recycle(std::move(forward_out));
      },
      &report);

  RunMicroBenchmark(
      "BackwardExtensionsReuse",
      [&] {
        DoNotOptimize(
            BackwardExtensions(index, hot, hot_instances, &ws).size());
      },
      &report);

  RunMicroBenchmark(
      "QreFindInstances",
      [&] { DoNotOptimize(FindAllInstances(hot, db).size()); }, &report);

  RunMicroBenchmark(
      "TemporalPoints",
      [&] { DoNotOptimize(ComputeTemporalPoints(hot, db).TotalPoints()); },
      &report);

  RunMicroBenchmark(
      "EarliestEmbedding",
      [&] {
        size_t hits = 0;
        for (EventSpan seq : db) {
          if (EmbedsAt(hot, seq, 0)) ++hits;
        }
        DoNotOptimize(hits);
      },
      &report);

  RunMicroBenchmark(
      "CountOccurrences", [&] { DoNotOptimize(CountOccurrences(hot, db)); },
      &report);

  // --- the vertical bitmap backend on the same (dense, fig1-style QUEST)
  // corpus. The cold benchmarks construct a fresh workspace per call like
  // their CSR twins above; the chooser line documents what `auto` picks.
  // The legacy Bitmap* benches are pinned to the scalar kernel table —
  // their trajectory predates the SIMD dispatch, and the Simd* twins
  // below carry the native-dispatch numbers.
  std::printf("--- bitmap backend (auto on this corpus: %s) ---\n",
              BackendKindName(ChooseBackendKind(db)));
  SetKernelsForTest(&ScalarKernels());
  BitmapIndex bitmap_index(db);
  const CountingBackend bitmap_backend(bitmap_index);

  RunMicroBenchmark(
      "BitmapIndexBuild",
      [&] {
        BitmapIndex ix(db);
        DoNotOptimize(ix.num_events());
      },
      &report);

  // Cold ForwardExtensions under both kernel tables. The two rows are the
  // same workload measured in ONE loop, alternating tables every round and
  // keeping each table's best round: interleaving cancels the thermal /
  // frequency drift a several-minute bench run accumulates (which would
  // otherwise systematically penalize whichever row runs later), and
  // best-of compares the tables' true floors instead of two different
  // noise samples.
  auto forward_cold_once = [&] {
    ProjectionWorkspace cold;
    ForwardExtensionMap out;
    ForwardExtensions(bitmap_backend, hot, hot_instances, &cold, &out);
    DoNotOptimize(out.size());
  };
  auto forward_cold_round_ns = [&](int iters) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) forward_cold_once();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           iters;
  };
  double bitmap_forward_cold_ns = 1e18, simd_forward_cold_ns = 1e18;
  for (int round = 0; round < 12; ++round) {
    // Alternate which table goes first: a fixed order samples each
    // round's frequency/cache drift asymmetrically and biases the pair.
    for (int k = 0; k < 2; ++k) {
      if ((k == 0) == ((round & 1) == 0)) {
        SetKernelsForTest(&ScalarKernels());
        bitmap_forward_cold_ns =
            std::min(bitmap_forward_cold_ns, forward_cold_round_ns(600));
      } else {
        SetKernelsForTest(nullptr);
        simd_forward_cold_ns =
            std::min(simd_forward_cold_ns, forward_cold_round_ns(600));
      }
    }
  }
  SetKernelsForTest(&ScalarKernels());
  report.Record("BitmapForwardExtensions", bitmap_forward_cold_ns);
  std::printf("BitmapForwardExtensions    %14.1f ns/op (best of 12x600)\n",
              bitmap_forward_cold_ns);

  ProjectionWorkspace bitmap_ws;
  ForwardExtensionMap bitmap_forward_out;
  RunMicroBenchmark(
      "BitmapForwardExtensionsReuse",
      [&] {
        ForwardExtensions(bitmap_backend, hot, hot_instances, &bitmap_ws,
                          &bitmap_forward_out);
        DoNotOptimize(bitmap_forward_out.size());
        bitmap_ws.forward.Recycle(std::move(bitmap_forward_out));
      },
      &report);

  RunMicroBenchmark(
      "BitmapBackwardExtensionsReuse",
      [&] {
        DoNotOptimize(
            BackwardExtensions(bitmap_backend, hot, hot_instances, &bitmap_ws)
                .size());
      },
      &report);

  RunMicroBenchmark(
      "BitmapQreCountInstances",
      [&] { DoNotOptimize(CountInstances(bitmap_backend, hot)); }, &report);

  RunMicroBenchmark(
      "BitmapCountOccurrences",
      [&] { DoNotOptimize(CountOccurrences(bitmap_backend, hot)); },
      &report);

  std::printf(
      "forward cold speedup: %.1fx (csr %.1f us -> bitmap %.1f us)\n",
      csr_forward_cold_ns / bitmap_forward_cold_ns,
      csr_forward_cold_ns / 1e3, bitmap_forward_cold_ns / 1e3);

  // --- the same bitmap queries under native kernel dispatch: what the
  // process actually runs with (AVX2 where the CPU has it). The
  // scalar-pinned Bitmap* rows above are the baseline of this speedup.
  SetKernelsForTest(nullptr);
  std::printf("--- simd kernels (dispatch: %s) ---\n", SimdDispatchLevel());
  // Measured interleaved with BitmapForwardExtensions above (same
  // workload, native table rounds).
  report.Record("SimdForwardExtensions", simd_forward_cold_ns);
  std::printf("SimdForwardExtensions      %14.1f ns/op (best of 12x600)\n",
              simd_forward_cold_ns);
  ProjectionWorkspace simd_ws;
  ForwardExtensionMap simd_forward_out;
  RunMicroBenchmark(
      "SimdForwardExtensionsReuse",
      [&] {
        ForwardExtensions(bitmap_backend, hot, hot_instances, &simd_ws,
                          &simd_forward_out);
        DoNotOptimize(simd_forward_out.size());
        simd_ws.forward.Recycle(std::move(simd_forward_out));
      },
      &report);
  std::printf(
      "simd forward cold speedup: %.2fx (scalar %.1f us -> %s %.1f us)\n",
      bitmap_forward_cold_ns / simd_forward_cold_ns,
      bitmap_forward_cold_ns / 1e3, SimdDispatchLevel(),
      simd_forward_cold_ns / 1e3);

  // --- the sparse synthetic corpus (huge alphabet, rare events — mean
  // occurrences ~2): the regime where the full bitmap loses the miners'
  // steady state (its events x words table falls out of cache, so every
  // per-event row touch misses). The hybrid format exists for exactly
  // this shape — rare events keep sorted ID-lists, only the dense heads
  // pay for rows — and `auto` must pick it here. All three backends are
  // measured workspace-reusing, the state the miners actually run in.
  std::printf("--- sparse corpus (auto must pick hybrid) ---\n");
  {  // Scoped: the sparse tables (the bitmap's is ~100 MB) must be gone
     // before the peak-RSS probes fork off this process.
  const SequenceDatabase sparse = [] {
    QuestParams p;
    p.d_sequences_thousands = 2.0;   // 2000 sequences.
    p.c_avg_sequence_length = 20;
    p.n_events_thousands = 20.0;     // ~20k distinct events.
    p.s_avg_pattern_length = 4;
    p.num_seed_patterns = 40;
    return GenerateQuest(p).TakeValueOrDie();
  }();
  PositionIndex sparse_csr(sparse);
  BitmapIndex sparse_bitmap(sparse);
  std::printf(
      "sparse corpus: auto picks %s (mean occurrences %.2f, bitmap table "
      "%.1f MB)\n",
      BackendKindName(ChooseBackendKind(sparse)),
      static_cast<double>(sparse.TotalEvents()) /
          static_cast<double>(sparse.dictionary().size()),
      static_cast<double>(sparse_bitmap.table_bytes()) / 1e6);
  const HybridIndex sparse_hybrid(sparse);
  std::printf(
      "hybrid split: %zu dense events (bitmap rows), %zu sparse "
      "(ID-lists), cutoff %" PRIu64 " occurrences, table %.1f MB "
      "(bitmap would be %.1f MB)\n",
      sparse_hybrid.num_dense_events(),
      sparse_hybrid.num_events() - sparse_hybrid.num_dense_events(),
      sparse_hybrid.dense_cutoff(),
      static_cast<double>(sparse_hybrid.table_bytes()) / 1e6,
      static_cast<double>(sparse_bitmap.table_bytes()) / 1e6);
  // The workload: sparse-tier root expansion — SingleEventInstances plus
  // the first ForwardExtensions for every frequent event below the dense
  // cutoff. This is the unit a low-min-support miner repeats per root on a
  // huge-alphabet corpus, and the regime the formats genuinely diverge in:
  // CSR's root enumeration walks all sequences per event (O(sequences)
  // even for a four-occurrence event), the full bitmap scans a mostly-empty
  // multi-KB row per sequence, and the hybrid reads the event's sorted
  // ID-list directly.
  constexpr uint64_t kSparseMinSupport = 4;
  std::vector<EventId> sparse_roots;
  for (EventId ev = 0; ev < sparse.dictionary().size(); ++ev) {
    const uint64_t count = sparse_hybrid.TotalCount(ev);
    if (count >= kSparseMinSupport && count < sparse_hybrid.dense_cutoff()) {
      sparse_roots.push_back(ev);
    }
  }
  std::printf("sparse-tier roots at min_support %" PRIu64 ": %zu events\n",
              kSparseMinSupport, sparse_roots.size());
  auto expand_sparse_roots = [&](const CountingBackend& backend,
                                 ProjectionWorkspace* ws,
                                 ForwardExtensionMap* out) {
    size_t buckets = 0;
    for (EventId ev : sparse_roots) {
      const InstanceList instances = SingleEventInstances(backend, ev);
      ForwardExtensions(backend, Pattern{ev}, instances, ws, out);
      buckets += out->size();
      ws->forward.Recycle(std::move(*out));
    }
    return buckets;
  };
  const CountingBackend sparse_csr_backend(sparse_csr);
  ProjectionWorkspace sparse_ws;
  ForwardExtensionMap sparse_out;
  const double sparse_csr_ns = RunMicroBenchmark(
      "SparseForwardExtensionsCsr",
      [&] {
        DoNotOptimize(
            expand_sparse_roots(sparse_csr_backend, &sparse_ws, &sparse_out));
      },
      &report, /*budget_seconds=*/1.0);
  // Scalar-pinned like the other legacy bitmap rows.
  SetKernelsForTest(&ScalarKernels());
  const CountingBackend sparse_bitmap_backend(sparse_bitmap);
  ProjectionWorkspace sparse_bitmap_ws;
  const double sparse_bitmap_ns = RunMicroBenchmark(
      "SparseForwardExtensionsBitmap",
      [&] {
        DoNotOptimize(expand_sparse_roots(sparse_bitmap_backend,
                                          &sparse_bitmap_ws, &sparse_out));
      },
      &report, /*budget_seconds=*/1.0);
  SetKernelsForTest(nullptr);
  const CountingBackend sparse_hybrid_backend(sparse_hybrid);
  ProjectionWorkspace sparse_hybrid_ws;
  const double sparse_hybrid_ns = RunMicroBenchmark(
      "HybridSparseForwardExtensions",
      [&] {
        DoNotOptimize(expand_sparse_roots(sparse_hybrid_backend,
                                          &sparse_hybrid_ws, &sparse_out));
      },
      &report, /*budget_seconds=*/1.0);
  std::printf(
      "sparse root expansion: hybrid %.1f us vs csr %.1f us (%.2fx) vs "
      "bitmap %.1f us (%.2fx)\n",
      sparse_hybrid_ns / 1e3, sparse_csr_ns / 1e3,
      sparse_csr_ns / sparse_hybrid_ns, sparse_bitmap_ns / 1e3,
      sparse_bitmap_ns / sparse_hybrid_ns);
  }  // End of the sparse-corpus scope.

  // db_load: text parse vs .smdb mmap, on the fig1 corpus (the dataset the
  // figure benchmarks mine). The packed open only materializes the
  // dictionary and validates offsets; the arena is mapped, not parsed.
  std::printf("--- db_load (fig1 corpus) ---\n");
  const SequenceDatabase fig1 = bench::MakeBenchDatabase();
  const bench::LoadBenchFiles files =
      bench::WriteLoadBenchFiles(fig1, "bench_db_load");
  const double text_ns = RunMicroBenchmark(
      "DbLoadTextParse",
      [&] {
        Result<SequenceDatabase> loaded = ReadTextTraceFile(files.text_path);
        DoNotOptimize(loaded->TotalEvents());
      },
      &report);
  const double smdb_ns = RunMicroBenchmark(
      "DbLoadSmdbMmap",
      [&] {
        Result<MappedDatabase> mapped = MappedDatabase::Open(files.smdb_path);
        DoNotOptimize(mapped->db().TotalEvents());
      },
      &report);
  std::printf("db_load speedup: %.1fx (text %.1f us -> smdb %.1f us)\n",
              text_ns / smdb_ns, text_ns / 1e3, smdb_ns / 1e3);

  // db_shard: the same full-pattern mining task, end to end (open +
  // index + mine), over the modular scaled-fig1 corpus — as one .smdb
  // (single-file pass) versus as a per-module .smdbset on the sharded
  // execution path. Sharding wins twice: the per-shard position indexes
  // are events_i x sequences_i instead of one events x sequences table
  // (a ~modules-fold smaller working set for disjoint module alphabets),
  // and the shards mine concurrently on the pool on multi-core hosts.
  std::printf("--- db_shard (modular fig1 corpus) ---\n");
  constexpr size_t kModules = 8;
  std::vector<size_t> module_starts;
  const SequenceDatabase modular =
      bench::MakeModularBenchDatabase(kModules, &module_starts);
  const bench::ShardBenchFiles shard_files =
      bench::WriteShardBenchFiles(modular, module_starts, "bench_db_shard");
  FullPatternsTask shard_task;
  shard_task.options.min_support = 60;
  // Cache off: this row's trajectory is the raw two-phase scan; the
  // db_remine rows below carry the phase-1 cache story.
  shard_task.phase1_cache = false;
  size_t single_patterns = 0, sharded_patterns = 0;
  const double single_ns = RunMicroBenchmark(
      "DbShardSingleFile",
      [&] {
        Result<Engine> engine =
            Engine::FromBinaryFile(shard_files.smdb_path);
        Result<PatternSet> mined = engine->CollectPatterns(shard_task);
        single_patterns = mined->size();
        DoNotOptimize(single_patterns);
      },
      &report, 1.0);
  const double sharded_ns = RunMicroBenchmark(
      "DbShardParallel",
      [&] {
        Result<Engine> engine =
            Engine::FromShardSet(shard_files.smdbset_path);
        CollectingPatternSink sink;
        Result<RunReport> run = engine->MineSharded(shard_task, sink);
        sharded_patterns = sink.set().size();
        DoNotOptimize(run->patterns_emitted);
      },
      &report, 1.0);
  std::printf(
      "db_shard speedup: %.1fx (single %.1f ms -> sharded %.1f ms), "
      "%zu == %zu patterns\n",
      single_ns / sharded_ns, single_ns / 1e6, sharded_ns / 1e6,
      single_patterns, sharded_patterns);
  if (single_patterns != sharded_patterns) {
    std::fprintf(stderr,
                 "db_shard: sharded mining diverged from single-file!\n");
    return 1;
  }

  // db_remine: re-mining after a log-structured append of a fresh module
  // (a new component coming online — the modular corpus's natural growth
  // step). The warm path replays the eight untouched module shards from
  // the on-disk phase-1 candidate cache — their prune margins reference
  // only their own modules' events, which the disjoint tail never touches
  // — and scans only the appended tail shard; the cold path
  // (phase1_cache = false) re-scans everything. Both mine the same
  // appended set, so the pattern sets must agree exactly.
  std::printf("--- db_remine (append one module, warm phase-1 cache) ---\n");
  const bench::ShardBenchFiles remine_files =
      bench::WriteShardBenchFiles(modular, module_starts, "bench_db_remine");
  // A lower threshold than db_shard's: phase-1 scan cost grows steeply as
  // the support falls, which is exactly the work the cache saves — the
  // fixed per-run costs (index builds, digests, phase 2) are shared by
  // both paths and would otherwise mask the scan savings.
  FullPatternsTask remine_task;
  remine_task.options.min_support = 40;
  // The modular generator is deterministic, so a previous bench run's
  // cache would be a valid warm start — delete it for a reproducible
  // cold baseline (stale other-threshold entries would also bloat every
  // save below).
  std::remove(Phase1CachePath(remine_files.smdbset_path).c_str());
  {
    // Warm the cache over the base shards only...
    Result<Engine> engine = Engine::FromShardSet(remine_files.smdbset_path);
    CollectingPatternSink sink;
    Result<RunReport> run = engine->MineSharded(remine_task, sink);
    if (!run.ok()) {
      std::fprintf(stderr, "db_remine warm-up failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }
  const std::string remine_cache =
      Phase1CachePath(remine_files.smdbset_path);
  std::vector<char> base_cache;
  {
    std::ifstream in(remine_cache, std::ios::binary);
    base_cache.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
  }
  {
    // ...then append one module's worth of traces as a tail shard.
    Result<AppendSession> opened =
        AppendSession::Open(remine_files.smdbset_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "db_remine append open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    AppendSession session = opened.TakeValueOrDie();
    QuestParams params = bench::BenchQuestParams();
    params.seed += kModules;  // The next module in the generator series.
    Result<SequenceDatabase> tail_db = GenerateQuest(params);
    if (!tail_db.ok()) {
      std::fprintf(stderr, "db_remine tail generation failed: %s\n",
                   tail_db.status().ToString().c_str());
      return 1;
    }
    const std::string prefix = "m" + std::to_string(kModules) + ".";
    Status appended = Status::OK();
    std::vector<std::string> names;
    for (EventSpan seq : *tail_db) {
      names.clear();
      names.reserve(seq.size());
      for (EventId ev : seq) {
        names.push_back(prefix + tail_db->dictionary().Name(ev));
      }
      appended = session.AddTrace(names);
      if (!appended.ok()) break;
    }
    if (appended.ok()) appended = session.Commit();
    if (!appended.ok()) {
      std::fprintf(stderr, "db_remine append failed: %s\n",
                   appended.ToString().c_str());
      return 1;
    }
  }
  // The engines are opened once and reused across iterations — the shape
  // of a long-lived specmined session re-mining after an append (the
  // registry swaps in an open engine; index builds and shard digests are
  // paid once per generation, not per mine).
  Result<Engine> remine_engine =
      Engine::FromShardSet(remine_files.smdbset_path);
  if (!remine_engine.ok()) {
    std::fprintf(stderr, "db_remine reopen failed: %s\n",
                 remine_engine.status().ToString().c_str());
    return 1;
  }
  size_t incremental_patterns = 0, cold_patterns = 0;
  const double incremental_ns = RunMicroBenchmark(
      "IncrementalRemine",
      [&] {
        // Restore the pre-append cache so every iteration replays the
        // base shards and scans exactly the appended tail.
        std::ofstream(remine_cache, std::ios::binary | std::ios::trunc)
            .write(base_cache.data(),
                   static_cast<std::streamsize>(base_cache.size()));
        CollectingPatternSink sink;
        Result<RunReport> run = remine_engine->MineSharded(remine_task, sink);
        incremental_patterns = sink.set().size();
        DoNotOptimize(run->patterns_emitted);
      },
      &report, 1.0);
  FullPatternsTask cold_task = remine_task;
  cold_task.phase1_cache = false;
  const double cold_ns = RunMicroBenchmark(
      "ColdRemine",
      [&] {
        CollectingPatternSink sink;
        Result<RunReport> run = remine_engine->MineSharded(cold_task, sink);
        cold_patterns = sink.set().size();
        DoNotOptimize(run->patterns_emitted);
      },
      &report, 1.0);
  std::printf(
      "db_remine speedup: %.1fx (cold %.1f ms -> incremental %.1f ms), "
      "%zu == %zu patterns\n",
      cold_ns / incremental_ns, cold_ns / 1e6, incremental_ns / 1e6,
      cold_patterns, incremental_patterns);
  if (incremental_patterns != cold_patterns) {
    std::fprintf(stderr,
                 "db_remine: cached mining diverged from the cold scan!\n");
    return 1;
  }
  {
    // Tripwire: the incremental path must actually replay the eight base
    // shards, not silently rescan them.
    std::ofstream(remine_cache, std::ios::binary | std::ios::trunc)
        .write(base_cache.data(),
               static_cast<std::streamsize>(base_cache.size()));
    Result<Engine> engine = Engine::FromShardSet(remine_files.smdbset_path);
    CollectingPatternSink sink;
    Result<RunReport> run = engine->MineSharded(remine_task, sink);
    if (!run.ok() || run->shards_cached != kModules ||
        run->shards_scanned != 1) {
      std::fprintf(stderr,
                   "db_remine: expected %zu cached + 1 scanned shards, got "
                   "%zu cached + %zu scanned\n",
                   kModules, run.ok() ? run->shards_cached : size_t{0},
                   run.ok() ? run->shards_scanned : size_t{0});
      return 1;
    }
  }

  // --- the lazy merged view over the same per-module shards: merged
  // queries answered through per-shard delegation plus remap tables —
  // what a FromShardSet session's regular tasks run on instead of an
  // eagerly merged arena.
  std::printf("--- lazy merged view (per-module shards) ---\n");
  Result<ShardedDatabase> merged_set =
      ShardedDatabase::Open(shard_files.smdbset_path);
  if (!merged_set.ok()) {
    std::fprintf(stderr, "cannot reopen %s: %s\n",
                 shard_files.smdbset_path.c_str(),
                 merged_set.status().ToString().c_str());
    return 1;
  }
  const ShardBackendSet shard_backends = BuildShardBackends(*merged_set);
  const MergedCountingIndex merged(*merged_set, shard_backends.backends);
  const CountingBackend merged_backend(merged);
  EventId merged_hottest = 0;
  for (EventId e = 0; e < merged_set->dictionary().size(); ++e) {
    if (merged.TotalCount(e) > merged.TotalCount(merged_hottest)) {
      merged_hottest = e;
    }
  }
  ProjectionWorkspace merged_ws;
  const InstanceList merged_seed =
      SingleEventInstances(merged_backend, merged_hottest);
  ForwardExtensionMap merged_seed_ext;
  ForwardExtensions(merged_backend, Pattern{merged_hottest}, merged_seed,
                    &merged_ws, &merged_seed_ext);
  EventId merged_second = merged_hottest;
  size_t merged_best = 0;
  InstanceList merged_instances;
  for (auto& [ev, il] : merged_seed_ext) {
    if (il.size() > merged_best) {
      merged_best = il.size();
      merged_second = ev;
      merged_instances = il;
    }
  }
  const Pattern merged_hot = Pattern{merged_hottest}.Extend(merged_second);
  merged_ws.forward.Recycle(std::move(merged_seed_ext));
  ForwardExtensionMap merged_out;
  RunMicroBenchmark(
      "LazyMergedQueryForwardExtensions",
      [&] {
        ForwardExtensions(merged_backend, merged_hot, merged_instances,
                          &merged_ws, &merged_out);
        DoNotOptimize(merged_out.size());
        merged_ws.forward.Recycle(std::move(merged_out));
      },
      &report);
  RunMicroBenchmark(
      "LazyMergedQueryCountInstances",
      [&] { DoNotOptimize(CountInstances(merged_backend, merged_hot)); },
      &report);

#if defined(__linux__)
  // The memory story the lazy view buys: peak RSS of open + index + one
  // query, eagerly merging the arena versus the merged view. Probed in
  // forked children so both start from the identical baseline.
  const double eager_kb = PeakRssProbeKb([&] {
    Result<ShardedDatabase> set =
        ShardedDatabase::Open(shard_files.smdbset_path);
    const SequenceDatabase merged_db = set->Merge();
    PositionIndex ix(merged_db);
    DoNotOptimize(SingleEventInstances(ix, merged_hottest).size());
  });
  const double lazy_kb = PeakRssProbeKb([&] {
    Result<ShardedDatabase> set =
        ShardedDatabase::Open(shard_files.smdbset_path);
    const ShardBackendSet per_shard = BuildShardBackends(*set);
    const MergedCountingIndex view(*set, per_shard.backends);
    DoNotOptimize(
        SingleEventInstances(CountingBackend(view), merged_hottest).size());
  });
  if (eager_kb > 0 && lazy_kb > 0) {
    report.Record("EagerMergePeakRssKb", eager_kb);
    report.Record("LazyMergePeakRssKb", lazy_kb);
    std::printf(
        "merge peak RSS: eager %.1f MB -> lazy view %.1f MB (%.0f%% of "
        "eager)\n",
        eager_kb / 1e3, lazy_kb / 1e3, 100.0 * lazy_kb / eager_kb);
  } else {
    std::fprintf(stderr, "peak-RSS probe failed; omitting RSS entries\n");
  }
#endif  // defined(__linux__)

  return report.Write() ? 0 : 1;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
