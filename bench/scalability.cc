// Scalability sweep (paper Section 6's claim: "the algorithms run well
// even on very low support thresholds"): closed-pattern and NR-rule
// mining runtime as the database grows in number of sequences (D) and in
// average sequence length (C).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/itermine/closed_miner.h"
#include "src/rulemine/rule_miner.h"

namespace specmine {
namespace {

SequenceDatabase MakeDataset(double d_thousands, double c_len) {
  QuestParams p = bench::BenchQuestParams();
  p.d_sequences_thousands = d_thousands;
  p.c_avg_sequence_length = c_len;
  Result<SequenceDatabase> db = GenerateQuest(p);
  if (!db.ok()) std::exit(1);
  return db.TakeValueOrDie();
}

void Row(const SequenceDatabase& db, const char* label) {
  ClosedIterMinerOptions pattern_options;
  pattern_options.min_support =
      static_cast<uint64_t>(0.03 * db.size()) + 1;
  Stopwatch sw1;
  size_t patterns = MineClosedIterative(db, pattern_options).size();
  double t_patterns = sw1.ElapsedSeconds();

  RuleMinerOptions rule_options;
  rule_options.min_s_support = static_cast<uint64_t>(0.07 * db.size()) + 1;
  rule_options.min_confidence = 0.7;
  rule_options.non_redundant = true;
  Stopwatch sw2;
  size_t rules = MineRecurrentRules(db, rule_options).size();
  double t_rules = sw2.ElapsedSeconds();

  std::printf("%-16s %8zu %10zu %12.3f %8zu %12.3f %8zu\n", label, db.size(),
              db.TotalEvents(), t_patterns, patterns, t_rules, rules);
}

int Run() {
  std::printf("=== Scalability: closed patterns & NR rules ===\n");
  std::printf("%-16s %8s %10s %12s %8s %12s %8s\n", "dataset", "seqs",
              "events", "patterns(s)", "|P|", "rules(s)", "|R|");
  bench::PrintRule(80);

  const bool paper = bench::PaperScale();
  // Sweep D (sequence count), C fixed.
  for (double d : paper ? std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}
                        : std::vector<double>{0.1, 0.2, 0.4, 0.8}) {
    SequenceDatabase db = MakeDataset(d, 20.0);
    char label[32];
    std::snprintf(label, sizeof(label), "D=%g C=20", d);
    Row(db, label);
  }
  // Sweep C (sequence length), D fixed.
  for (double c : paper ? std::vector<double>{10, 15, 20, 25, 30}
                        : std::vector<double>{10, 20, 30, 40}) {
    SequenceDatabase db = MakeDataset(paper ? 2.0 : 0.2, c);
    char label[32];
    std::snprintf(label, sizeof(label), "D=%g C=%g", paper ? 2.0 : 0.2, c);
    Row(db, label);
  }
  return 0;
}

}  // namespace
}  // namespace specmine

int main() { return specmine::Run(); }
