// Quickstart: mine iterative patterns and recurrent rules from a handful
// of program traces using the SpecMiner facade.
//
//   $ ./quickstart [trace_file]
//
// Without an argument a small built-in lock/file trace set is used; with
// one, traces are read from the given plain-text file (one trace per
// line, whitespace-separated event names, '#' comments).

#include <cstdio>
#include <string>

#include "src/specmine/spec_miner.h"
#include "src/trace/trace_io.h"

namespace {

specmine::SequenceDatabase BuiltInTraces() {
  specmine::SequenceDatabase db;
  // A test suite exercising a tiny resource API: every lock is eventually
  // released, files are opened, read, and closed, and behaviours repeat
  // within traces (looping) and across traces.
  db.AddTraceFromString("lock read write unlock lock write unlock");
  db.AddTraceFromString("open read close lock unlock");
  db.AddTraceFromString("lock read unlock open read read close");
  db.AddTraceFromString("open write close open read close");
  db.AddTraceFromString("lock unlock lock read write unlock");
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  specmine::SequenceDatabase db;
  if (argc > 1) {
    auto loaded = specmine::ReadTextTraceFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = loaded.TakeValueOrDie();
  } else {
    db = BuiltInTraces();
  }

  specmine::SpecMiner miner(std::move(db));

  specmine::PatternMiningConfig pattern_config;
  pattern_config.min_support_fraction = 0.6;  // >= 60% of traces.
  pattern_config.closed = true;

  specmine::RuleMiningConfig rule_config;
  rule_config.min_s_support_fraction = 0.6;
  rule_config.min_confidence = 1.0;  // Only always-holding rules.
  rule_config.non_redundant = true;

  specmine::SpecificationReport report =
      miner.Mine(pattern_config, rule_config);
  std::printf("%s", report.ToText(miner.database().dictionary()).c_str());
  return 0;
}
