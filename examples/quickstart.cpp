// Quickstart: one specmine::Engine session over a handful of program
// traces — closed iterative patterns, then recurrent rules with their LTL
// forms, sharing the session's cached position index across both tasks.
//
//   $ ./quickstart [trace_file]
//
// Without an argument a small built-in lock/file trace set is used; with
// one, traces are read from the given plain-text file (one trace per
// line, whitespace-separated event names, '#' comments).

#include <cstdio>
#include <string>

#include "src/engine/engine.h"
#include "src/ltl/translate.h"

namespace {

specmine::SequenceDatabase BuiltInTraces() {
  specmine::SequenceDatabaseBuilder db;
  // A test suite exercising a tiny resource API: every lock is eventually
  // released, files are opened, read, and closed, and behaviours repeat
  // within traces (looping) and across traces.
  db.AddTraceFromString("lock read write unlock lock write unlock");
  db.AddTraceFromString("open read close lock unlock");
  db.AddTraceFromString("lock read unlock open read read close");
  db.AddTraceFromString("open write close open read close");
  db.AddTraceFromString("lock unlock lock read write unlock");
  return db.Build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specmine;

  // One session per immutable trace database. The factories validate the
  // input (parse errors carry line numbers; oversized databases are
  // rejected before the index's uint32 offsets could wrap).
  Result<Engine> session = argc > 1 ? Engine::FromTextTraceFile(argv[1])
                                    : Engine::Create(BuiltInTraces());
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 1;
  }
  const Engine& engine = *session;
  const EventDictionary& dict = engine.database().dictionary();

  // Task 1: closed iterative patterns at >= 60% of traces. This builds
  // the session's position index.
  ClosedTask patterns_task;
  patterns_task.options.min_support = engine.AbsoluteSupport(0.6);
  CollectingPatternSink patterns;
  Result<RunReport> patterns_run = engine.Mine(patterns_task, patterns);
  if (!patterns_run.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 patterns_run.status().ToString().c_str());
    return 1;
  }
  std::printf("closed patterns (%s):\n%s",
              patterns_run->ToString().c_str(),
              patterns.set().ToString(dict).c_str());

  // Task 2: always-holding non-redundant rules, in the same session. The
  // rule miner works off occurrence scans (not the position index), so
  // this run reports index_build_seconds == 0 and reuses the session's
  // worker pool; any further pattern task would reuse the cached index.
  RulesTask rules_task;
  rules_task.options.min_s_support = engine.AbsoluteSupport(0.6);
  rules_task.options.min_confidence = 1.0;
  rules_task.options.non_redundant = true;
  CollectingRuleSink rules;
  Result<RunReport> rules_run = engine.Mine(rules_task, rules);
  if (!rules_run.ok()) {
    std::fprintf(stderr, "error: %s\n", rules_run.status().ToString().c_str());
    return 1;
  }
  std::printf("\nrules (%s):\n", rules_run->ToString().c_str());
  for (const Rule& rule : rules.set().rules()) {
    std::printf("%s\n    LTL: %s\n", rule.ToString(dict).c_str(),
                RuleToLtl(rule, dict)->ToString().c_str());
  }
  std::printf("\nindex built %zu time(s) across both tasks\n",
              engine.index_builds());
  return 0;
}
