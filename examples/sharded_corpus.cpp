// Sharded corpus walkthrough: split a multi-module trace corpus into
// size-bounded .smdb shards with a .smdbset manifest, open it as an
// Engine session, and mine it both ways — the merged task path and the
// per-shard parallel MineSharded path — verifying the sharded-equivalence
// contract (output byte-identical to the unsharded corpus) as it goes.
//
//   $ ./sharded_corpus [work_dir]
//
// Files are written under work_dir (default: the current directory).

#include <cstdio>
#include <string>

#include "src/engine/engine.h"
#include "src/trace/shard_set.h"

namespace {

// Two "modules" with disjoint event alphabets (a transaction API and a
// file API) — the corpus shape sharding serves best: per-module shards
// keep local dictionaries small and the cross-shard prune tight.
specmine::Status WriteCorpus(const std::string& manifest_path) {
  using namespace specmine;
  ShardWriterOptions options;
  options.shard_bytes = 4096;  // Tiny, to show rotation; default is 64 MiB.
  ShardWriter writer(manifest_path, options);
  for (int i = 0; i < 40; ++i) {
    SPECMINE_RETURN_NOT_OK(
        writer.AddTraceFromString("tx.begin tx.log tx.commit"));
    SPECMINE_RETURN_NOT_OK(
        writer.AddTraceFromString("tx.begin tx.log tx.abort tx.begin "
                                  "tx.log tx.commit"));
  }
  SPECMINE_RETURN_NOT_OK(writer.CutShard());  // Module boundary.
  for (int i = 0; i < 40; ++i) {
    SPECMINE_RETURN_NOT_OK(
        writer.AddTraceFromString("file.open file.read file.close"));
    SPECMINE_RETURN_NOT_OK(
        writer.AddTraceFromString("file.open file.write file.write "
                                  "file.close"));
  }
  SPECMINE_RETURN_NOT_OK(writer.Finish());
  std::printf("wrote %zu shards, %zu traces, %zu distinct events -> %s\n",
              writer.shards_written(), writer.sequences_written(),
              writer.dictionary().size(), manifest_path.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specmine;
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";
  const std::string manifest = dir + "sharded_corpus.smdbset";

  Status written = WriteCorpus(manifest);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }

  Result<Engine> session = Engine::FromShardSet(manifest);
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 1;
  }
  const Engine& engine = *session;
  const EventDictionary& dict = engine.database().dictionary();
  std::printf("opened %zu shards as one corpus: %zu traces, %zu events\n",
              engine.shard_set().num_shards(), engine.database().size(),
              engine.database().TotalEvents());

  FullPatternsTask task;
  task.options.min_support = engine.AbsoluteSupport(0.4);
  task.options.num_threads = 0;  // One job per shard, all cores.

  // The per-shard parallel path...
  CollectingPatternSink sharded;
  Result<RunReport> sharded_run = engine.MineSharded(task, sharded);
  if (!sharded_run.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 sharded_run.status().ToString().c_str());
    return 1;
  }
  // ...and the merged single-database path must agree byte for byte.
  CollectingPatternSink merged;
  Result<RunReport> merged_run = engine.Mine(task, merged);
  if (!merged_run.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 merged_run.status().ToString().c_str());
    return 1;
  }
  const std::string sharded_text = sharded.set().ToString(dict);
  if (sharded_text != merged.set().ToString(dict)) {
    std::fprintf(stderr, "sharded-equivalence contract violated!\n");
    return 1;
  }
  std::printf(
      "\n%zu frequent patterns, identical on both paths "
      "(sharded %s)\n%s",
      sharded.set().size(), sharded_run->ToString().c_str(),
      sharded_text.c_str());
  return 0;
}
