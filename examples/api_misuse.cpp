// API-misuse detection: the verification use-case from the paper's
// introduction. Mine recurrent rules from passing test-suite traces, take
// the confidence-1.0 rules as the API's specification (in LTL form), and
// check new traces against them — violations flag likely bugs such as a
// file descriptor that is never closed or a lock that is never released.

#include <cstdio>
#include <vector>

#include "src/engine/engine.h"
#include "src/ltl/checker.h"
#include "src/ltl/translate.h"
#include "src/specmine/monitor.h"
#include "src/support/random.h"
#include "src/support/strings.h"

namespace {

using namespace specmine;

// Training traces: correct usage of a tiny file/lock API, with looping.
SequenceDatabase TrainingTraces() {
  SequenceDatabaseBuilder db;
  Rng rng(2024);
  for (int t = 0; t < 40; ++t) {
    std::string trace;
    int sessions = 1 + static_cast<int>(rng.Uniform(3));
    for (int s = 0; s < sessions; ++s) {
      trace += "fd.open ";
      int reads = 1 + static_cast<int>(rng.Uniform(3));
      for (int r = 0; r < reads; ++r) {
        trace += rng.Bernoulli(0.5) ? "fd.read " : "fd.write ";
      }
      trace += "fd.close ";
      if (rng.Bernoulli(0.4)) {
        trace += "mutex.lock worker.run mutex.unlock ";
      }
    }
    db.AddTraceFromString(trace);
  }
  return db.Build();
}

// New traces to vet: two good, two buggy.
std::vector<std::pair<const char*, const char*>> TestTraces() {
  return {
      {"good-1", "fd.open fd.read fd.close"},
      {"good-2", "mutex.lock worker.run mutex.unlock fd.open fd.write fd.close"},
      {"leak-fd", "fd.open fd.read fd.read"},  // Never closed.
      {"stuck-lock", "fd.open fd.close mutex.lock worker.run"},  // No unlock.
  };
}

}  // namespace

int main() {
  // Mining runs through one Engine session over the training traces.
  Result<Engine> session = Engine::Create(TrainingTraces());
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 1;
  }
  const Engine& engine = *session;
  const SequenceDatabase& training = engine.database();

  // Mine the specification: always-holding, non-redundant rules.
  RulesTask task;
  task.options.min_s_support = static_cast<uint64_t>(0.3 * training.size());
  task.options.min_confidence = 1.0;
  task.options.non_redundant = true;
  Result<RuleSet> mined = engine.CollectRules(task);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  RuleSet spec = mined.TakeValueOrDie();
  spec.SortByQuality();
  std::printf("mined specification (%zu rules), first few:\n", spec.size());
  std::vector<LtlPtr> formulas;
  for (size_t i = 0; i < spec.size(); ++i) {
    LtlPtr f = RuleToLtl(spec[i], training.dictionary());
    formulas.push_back(f);
    if (i < 6) std::printf("  %s\n", f->ToString().c_str());
  }
  if (spec.size() > 6) std::printf("  ... (%zu more)\n", spec.size() - 6);

  // Vet the new traces. Reuse the training dictionary so atom names
  // resolve identically.
  std::printf("\nchecking new traces:\n");
  int flagged_traces = 0;
  for (const auto& [name, text] : TestTraces()) {
    SequenceDatabaseBuilder probe_builder;
    probe_builder.AddTraceFromString(text);
    SequenceDatabase probe = probe_builder.Build();
    size_t violated = 0;
    const LtlPtr* example_formula = nullptr;
    for (size_t i = 0; i < formulas.size(); ++i) {
      if (!EvaluateLtl(formulas[i], probe, 0)) {
        if (violated == 0) example_formula = &formulas[i];
        ++violated;
      }
    }
    if (violated == 0) {
      std::printf("  %-10s ok\n", name);
    } else {
      ++flagged_traces;
      std::printf("  %-10s VIOLATES %zu rule(s), e.g. %s\n", name, violated,
                  (*example_formula)->ToString().c_str());
    }
  }
  std::printf("\n%d trace(s) flagged (expected 2: the fd leak and the "
              "stuck lock).\n", flagged_traces);

  // The same checks as a *streaming* monitor (the runtime-monitoring
  // use-case of the paper's introduction): events are fed one at a time,
  // no trace is buffered, and open obligations at trace end are
  // violations.
  std::printf("\nstreaming monitor over the same traces:\n");
  SpecificationMonitor monitor(training.dictionary());
  for (const Rule& rule : spec.rules()) monitor.AddRule(rule);
  int monitor_flagged = 0;
  for (const auto& [name, text] : TestTraces()) {
    std::vector<uint64_t> before(monitor.NumRules());
    for (size_t i = 0; i < monitor.NumRules(); ++i) {
      before[i] = monitor.stats(i).violations;
    }
    monitor.BeginTrace();
    for (const auto& token : SplitAndTrim(text, ' ')) {
      monitor.OnEventName(token);
    }
    monitor.EndTrace();
    uint64_t violated_rules = 0;
    for (size_t i = 0; i < monitor.NumRules(); ++i) {
      if (monitor.stats(i).violations > before[i]) ++violated_rules;
    }
    if (violated_rules > 0) ++monitor_flagged;
    std::printf("  %-10s %s (%llu rule(s) with open obligations)\n", name,
                violated_rules > 0 ? "FLAGGED" : "ok",
                static_cast<unsigned long long>(violated_rules));
  }
  std::printf("\nmonitor flagged %d trace(s).\n", monitor_flagged);
  return (flagged_traces == 2 && monitor_flagged == 2) ? 0 : 1;
}
