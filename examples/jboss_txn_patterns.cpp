// Case-study example (paper Section 7, Figure 4): run the simulated JBoss
// transaction component's test suite, collect AOP-style traces, and mine
// the closed iterative patterns describing the transaction protocol —
// connection set-up, transaction set-up, commit processing, disposal.

#include <cstdio>

#include "src/engine/engine.h"
#include "src/sim/test_suite.h"
#include "src/trace/database_stats.h"

int main() {
  using namespace specmine;

  // Run the simulated test suite: 80 test cases, 1-4 transactions each,
  // 15% aborts, interleaved framework noise.
  sim::TestSuiteOptions suite;
  suite.num_traces = 80;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 2;
  suite.transaction.rollback_probability = 0.15;
  suite.transaction.noise_probability = 0.3;
  Result<Engine> session =
      Engine::Create(sim::GenerateTransactionTraces(suite));
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 1;
  }
  const Engine& engine = *session;
  const SequenceDatabase& db = engine.database();
  std::printf("collected traces: %s\n\n", ComputeStats(db).ToString().c_str());

  ClosedTask task;
  task.options.min_support = static_cast<uint64_t>(0.6 * db.size());
  Result<PatternSet> mined = engine.CollectPatterns(task);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  PatternSet closed = mined.TakeValueOrDie();
  closed.SortBySupport();

  std::printf("closed iterative patterns (min_sup = %llu instances):\n\n",
              static_cast<unsigned long long>(task.options.min_support));
  // Print the longest pattern in full (the Figure-4 protocol) and a
  // summary line for the rest.
  const MinedPattern& longest = closed.Longest();
  std::printf("longest pattern — %zu events, support %llu:\n",
              longest.pattern.size(),
              static_cast<unsigned long long>(longest.support));
  for (size_t i = 0; i < longest.pattern.size(); ++i) {
    std::printf("    %s\n",
                db.dictionary().NameOrPlaceholder(longest.pattern[i]).c_str());
  }
  std::printf("\nother patterns (%zu):\n", closed.size() - 1);
  size_t shown = 0;
  for (const MinedPattern& p : closed.items()) {
    if (p.pattern == longest.pattern) continue;
    if (++shown > 10) {
      std::printf("    ... (%zu more)\n", closed.size() - 1 - 10);
      break;
    }
    std::printf("    [%zu events, sup %llu] %s\n", p.pattern.size(),
                static_cast<unsigned long long>(p.support),
                p.pattern.ToString(db.dictionary()).c_str());
  }
  return 0;
}
