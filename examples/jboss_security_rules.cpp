// Case-study example (paper Section 7, Figure 5): run the simulated JBoss
// security component's test suite and mine non-redundant recurrent rules
// describing JAAS authentication, rendering each rule as LTL for use with
// a model checker or runtime monitor.

#include <cstdio>

#include "src/ltl/checker.h"
#include "src/ltl/translate.h"
#include "src/rulemine/rule_miner.h"
#include "src/sim/test_suite.h"
#include "src/trace/database_stats.h"

int main() {
  using namespace specmine;

  sim::TestSuiteOptions suite;
  suite.num_traces = 80;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 3;
  suite.security.login_failure_probability = 0.05;  // Occasional failures.
  suite.security.missing_entry_probability = 0.1;
  suite.security.direct_name_lookup_probability = 0.1;
  suite.security.noise_probability = 0.3;
  SequenceDatabase db = sim::GenerateSecurityTraces(suite);
  std::printf("collected traces: %s\n\n", ComputeStats(db).ToString().c_str());

  RuleMinerOptions options;
  options.min_s_support = static_cast<uint64_t>(0.8 * db.size());
  options.min_confidence = 0.8;
  options.non_redundant = true;
  RuleSet rules = MineRecurrentRules(db, options);
  rules.SortByQuality();

  std::printf("non-redundant recurrent rules (s-sup >= %llu, conf >= 90%%):\n",
              static_cast<unsigned long long>(options.min_s_support));
  for (const Rule& rule : rules.rules()) {
    std::printf("\n  %s\n", rule.ToString(db.dictionary()).c_str());
    LtlPtr ltl = RuleToLtl(rule, db.dictionary());
    std::printf("  LTL: %s\n", ltl->ToString().c_str());
    std::printf("  holds on %zu / %zu traces\n", CountHolding(ltl, db),
                db.size());
  }
  if (rules.empty()) std::printf("  (none)\n");
  return 0;
}
