// Case-study example (paper Section 7, Figure 5): run the simulated JBoss
// security component's test suite and mine non-redundant recurrent rules
// describing JAAS authentication, rendering each rule as LTL for use with
// a model checker or runtime monitor.

#include <cstdio>

#include "src/engine/engine.h"
#include "src/ltl/checker.h"
#include "src/ltl/translate.h"
#include "src/sim/test_suite.h"
#include "src/trace/database_stats.h"

int main() {
  using namespace specmine;

  sim::TestSuiteOptions suite;
  suite.num_traces = 80;
  suite.min_runs_per_trace = 1;
  suite.max_runs_per_trace = 3;
  suite.security.login_failure_probability = 0.05;  // Occasional failures.
  suite.security.missing_entry_probability = 0.1;
  suite.security.direct_name_lookup_probability = 0.1;
  suite.security.noise_probability = 0.3;
  Result<Engine> session = Engine::Create(sim::GenerateSecurityTraces(suite));
  if (!session.ok()) {
    std::fprintf(stderr, "error: %s\n", session.status().ToString().c_str());
    return 1;
  }
  const Engine& engine = *session;
  const SequenceDatabase& db = engine.database();
  std::printf("collected traces: %s\n\n", ComputeStats(db).ToString().c_str());

  RulesTask task;
  task.options.min_s_support = static_cast<uint64_t>(0.8 * db.size());
  task.options.min_confidence = 0.8;
  task.options.non_redundant = true;
  Result<RuleSet> mined = engine.CollectRules(task);
  if (!mined.ok()) {
    std::fprintf(stderr, "error: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  RuleSet rules = mined.TakeValueOrDie();
  rules.SortByQuality();

  std::printf("non-redundant recurrent rules (s-sup >= %llu, conf >= 90%%):\n",
              static_cast<unsigned long long>(task.options.min_s_support));
  for (const Rule& rule : rules.rules()) {
    std::printf("\n  %s\n", rule.ToString(db.dictionary()).c_str());
    LtlPtr ltl = RuleToLtl(rule, db.dictionary());
    std::printf("  LTL: %s\n", ltl->ToString().c_str());
    std::printf("  holds on %zu / %zu traces\n", CountHolding(ltl, db),
                db.size());
  }
  if (rules.empty()) std::printf("  (none)\n");
  return 0;
}
