// Deterministic corruption fuzzer for the .smdb / .smdbset readers.
//
// Builds a small synthetic corpus, packs it both ways — plus an
// appended-generation set (AppendSession commit) with a real phase-1
// candidate cache (`.p1c`) beside it — then applies N seeded mutations
// (bit flips, truncations, byte splats) to the packed bytes and re-opens
// the result under every IntegrityMode (and, for sets, both
// ShardFailurePolicy values). The contract under test: every open either
// succeeds or returns a clean Status — it never crashes, reads out of
// bounds, or trips a sanitizer. Successful opens are walked end to end
// so a structurally-accepted-but-bogus mapping would still fault under
// ASan/UBSan rather than slip through; a mutated cache file must load as
// a clean error (callers then treat it as empty), never crash.
//
//   fuzz_smdb [--iterations N] [--seed N] [--dir PATH]
//
// The default 500 iterations with the default seed is the CI
// configuration (run under -fsanitize=address,undefined); any non-zero
// exit or sanitizer report is a bug in the readers, not in the fuzzer.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/phase1_cache.h"
#include "src/trace/append_session.h"
#include "src/trace/binary_format.h"
#include "src/trace/sequence_database.h"
#include "src/trace/shard_set.h"

namespace specmine {
namespace {

// Reads a whole file; empty optional-style via ok flag is overkill here —
// the fuzzer controls every path it reads.
std::vector<char> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Consumes every byte a successful open exposes, so lazily-faulting
// mappings are actually touched while the sanitizers watch.
uint64_t WalkDatabase(const SequenceDatabase& db) {
  uint64_t acc = db.size();
  for (EventSpan seq : db) {
    for (EventId ev : seq) acc = acc * 1099511628211ull + ev;
  }
  for (size_t i = 0; i < db.dictionary().size(); ++i) {
    for (char c : db.dictionary().Name(static_cast<EventId>(i))) {
      acc = acc * 31 + static_cast<unsigned char>(c);
    }
  }
  return acc;
}

struct FuzzStats {
  size_t opens = 0;
  size_t accepted = 0;
  size_t rejected = 0;
  uint64_t sink = 0;  // Defeats dead-code elimination of the walks.
};

void TryOpenSmdb(const std::string& path, FuzzStats* stats) {
  for (IntegrityMode mode :
       {IntegrityMode::kOff, IntegrityMode::kHeader, IntegrityMode::kFull}) {
    SmdbOpenOptions options;
    options.integrity = mode;
    Result<MappedDatabase> mapped = MappedDatabase::Open(path, options);
    ++stats->opens;
    if (mapped.ok()) {
      ++stats->accepted;
      stats->sink ^= WalkDatabase(mapped->db());
    } else {
      ++stats->rejected;
      stats->sink ^= mapped.status().ToString().size();
    }
  }
}

void TryOpenSet(const std::string& path, FuzzStats* stats) {
  for (IntegrityMode mode :
       {IntegrityMode::kOff, IntegrityMode::kHeader, IntegrityMode::kFull}) {
    for (ShardFailurePolicy policy :
         {ShardFailurePolicy::kFail, ShardFailurePolicy::kQuarantine}) {
      SetOpenOptions options;
      options.integrity = mode;
      options.policy = policy;
      Result<ShardedDatabase> set = ShardedDatabase::Open(path, options);
      ++stats->opens;
      if (set.ok()) {
        ++stats->accepted;
        for (size_t s = 0; s < set->num_shards(); ++s) {
          stats->sink ^= WalkDatabase(set->shard(s));
        }
        stats->sink ^= WalkDatabase(set->Merge());
      } else {
        ++stats->rejected;
        stats->sink ^= set.status().ToString().size();
      }
    }
  }
}

void TryLoadCache(const std::string& path, FuzzStats* stats) {
  Result<Phase1Cache> cache = LoadPhase1Cache(path);
  ++stats->opens;
  if (cache.ok()) {
    ++stats->accepted;
    for (const Phase1CacheEntry& entry : cache->entries) {
      stats->sink ^= entry.shard_digest ^ entry.remap_digest ^
                     entry.options_fingerprint ^ entry.threshold;
      for (const MinedPattern& mined : entry.patterns) {
        stats->sink = stats->sink * 1099511628211ull + mined.support;
        for (EventId ev : mined.pattern.events()) {
          stats->sink = stats->sink * 31 + ev;
        }
      }
    }
  } else {
    ++stats->rejected;
    stats->sink ^= cache.status().ToString().size();
  }
}

// One seeded mutation of \p pristine: bit flip, byte splat, or truncation.
std::vector<char> Mutate(const std::vector<char>& pristine,
                         std::mt19937_64* rng) {
  std::vector<char> bytes = pristine;
  if (bytes.empty()) return bytes;
  switch ((*rng)() % 4) {
    case 0: {  // Single bit flip.
      const size_t at = (*rng)() % bytes.size();
      bytes[at] = static_cast<char>(bytes[at] ^ (1u << ((*rng)() % 8)));
      break;
    }
    case 1: {  // Byte splat.
      const size_t at = (*rng)() % bytes.size();
      bytes[at] = static_cast<char>((*rng)());
      break;
    }
    case 2: {  // Truncate to a random prefix (possibly empty).
      bytes.resize((*rng)() % bytes.size());
      break;
    }
    default: {  // A short burst of flips — compound corruption.
      const size_t flips = 1 + (*rng)() % 8;
      for (size_t i = 0; i < flips; ++i) {
        const size_t at = (*rng)() % bytes.size();
        bytes[at] = static_cast<char>(bytes[at] ^ (1u << ((*rng)() % 8)));
      }
      break;
    }
  }
  return bytes;
}

int RunFuzz(size_t iterations, uint64_t seed, const std::string& dir) {
  // A deterministic corpus: enough shape for several shards and a
  // non-trivial dictionary, small enough that 500 iterations stay fast.
  std::mt19937_64 gen(seed ^ 0x9e3779b97f4a7c15ull);
  SequenceDatabaseBuilder builder;
  for (size_t t = 0; t < 120; ++t) {
    std::vector<EventId> seq;
    const size_t len = 3 + gen() % 24;
    for (size_t i = 0; i < len; ++i) {
      const std::string name = "ev" + std::to_string(gen() % 40);
      seq.push_back(builder.mutable_dictionary()->Intern(name));
    }
    builder.AddSequence(EventSpan(seq.data(), seq.data() + seq.size()));
  }
  SequenceDatabase db = builder.Build();

  const std::string smdb = dir + "/fuzz_base.smdb";
  const std::string set = dir + "/fuzz_base.smdbset";
  const std::string mutated_smdb = dir + "/fuzz_mut.smdb";
  const std::string mutated_set = dir + "/fuzz_mut.smdbset";
  Status packed = WriteBinaryDatabaseFile(db, smdb);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack smdb failed: %s\n",
                 packed.ToString().c_str());
    return 1;
  }
  ShardWriterOptions shard_options;
  shard_options.shard_bytes = 4096;  // Forces several shards.
  packed = WriteShardedDatabase(db, set, shard_options);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack smdbset failed: %s\n",
                 packed.ToString().c_str());
    return 1;
  }

  // An appended-generation set with a warm phase-1 cache beside it: the
  // same corpus packed, appended once (tail shard + generation-1
  // manifest), and mined once so a real .p1c file exists to mutate.
  const std::string appended = dir + "/fuzz_appended.smdbset";
  packed = WriteShardedDatabase(db, appended, shard_options);
  if (!packed.ok()) {
    std::fprintf(stderr, "pack appended base failed: %s\n",
                 packed.ToString().c_str());
    return 1;
  }
  {
    Result<AppendSession> opened = AppendSession::Open(appended);
    if (!opened.ok()) {
      std::fprintf(stderr, "append open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    AppendSession session = opened.TakeValueOrDie();
    for (size_t t = 0; t < 10; ++t) {
      std::string line;
      const size_t len = 2 + gen() % 12;
      for (size_t i = 0; i < len; ++i) {
        line += "ev" + std::to_string(gen() % 48) + " ";
      }
      if (!session.AddTraceFromString(line).ok()) break;
    }
    Status committed = session.Commit();
    if (!committed.ok()) {
      std::fprintf(stderr, "append commit failed: %s\n",
                   committed.ToString().c_str());
      return 1;
    }
  }
  {
    Result<Engine> engine = Engine::FromShardSet(appended);
    if (!engine.ok()) {
      std::fprintf(stderr, "open appended failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    FullPatternsTask task;
    task.options.min_support = 8;
    CollectingPatternSink sink;
    Result<RunReport> mined = engine->MineSharded(task, sink);
    if (!mined.ok()) {
      std::fprintf(stderr, "warm-up mine failed: %s\n",
                   mined.status().ToString().c_str());
      return 1;
    }
  }
  const std::vector<char> appended_manifest_bytes = Slurp(appended);
  const std::vector<char> cache_bytes = Slurp(Phase1CachePath(appended));
  if (cache_bytes.empty()) {
    std::fprintf(stderr, "warm-up mine left no phase-1 cache\n");
    return 1;
  }
  const std::string mutated_appended = dir + "/fuzz_mut_appended.smdbset";
  const std::string mutated_cache = dir + "/fuzz_mut.p1c";

  // Mutation targets: the .smdb, the manifest, and every shard file. The
  // shard files are mutated in place (restored after each iteration) so
  // the set's relative-path resolution still finds them.
  const std::vector<char> smdb_bytes = Slurp(smdb);
  const std::vector<char> manifest_bytes = Slurp(set);
  std::vector<std::string> shard_paths;
  std::vector<std::vector<char>> shard_bytes;
  {  // Scoped: unmap the set before mutating shard files in place.
    Result<ShardedDatabase> opened = ShardedDatabase::Open(set);
    if (!opened.ok()) {
      std::fprintf(stderr, "reopen smdbset failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    for (size_t s = 0; s < opened->num_shards(); ++s) {
      shard_paths.push_back(opened->shard_path(s));
      shard_bytes.push_back(Slurp(opened->shard_path(s)));
    }
  }

  std::mt19937_64 rng(seed);
  FuzzStats stats;
  for (size_t i = 0; i < iterations; ++i) {
    switch (rng() % 5) {
      case 0: {  // Mutate the standalone .smdb.
        Spit(mutated_smdb, Mutate(smdb_bytes, &rng));
        TryOpenSmdb(mutated_smdb, &stats);
        break;
      }
      case 1: {  // Mutate the manifest (shards stay pristine).
        Spit(mutated_set, Mutate(manifest_bytes, &rng));
        // The mutated manifest resolves shards relative to its own
        // directory, which is where the real shard files live — exactly
        // the mixed-corruption case we want.
        TryOpenSet(mutated_set, &stats);
        break;
      }
      case 2: {  // Mutate the appended-generation manifest.
        Spit(mutated_appended, Mutate(appended_manifest_bytes, &rng));
        TryOpenSet(mutated_appended, &stats);
        break;
      }
      case 3: {  // Mutate the phase-1 candidate cache.
        Spit(mutated_cache, Mutate(cache_bytes, &rng));
        TryLoadCache(mutated_cache, &stats);
        break;
      }
      default: {  // Mutate one shard under the pristine manifest.
        const size_t victim = rng() % shard_paths.size();
        Spit(shard_paths[victim], Mutate(shard_bytes[victim], &rng));
        TryOpenSet(set, &stats);
        Spit(shard_paths[victim], shard_bytes[victim]);  // Restore.
        break;
      }
    }
  }

  std::printf(
      "fuzz_smdb: %zu mutations, %zu opens (%zu accepted, %zu rejected), "
      "sink %llx\n",
      iterations, stats.opens, stats.accepted, stats.rejected,
      static_cast<unsigned long long>(stats.sink));
  return 0;
}

}  // namespace
}  // namespace specmine

int main(int argc, char** argv) {
  size_t iterations = 500;
  uint64_t seed = 0x5eedf00dull;
  std::string dir = ".";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--dir") == 0) {
      dir = argv[i + 1];
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_smdb [--iterations N] [--seed N] "
                   "[--dir PATH]\n");
      return 2;
    }
  }
  return specmine::RunFuzz(iterations, seed, dir);
}
