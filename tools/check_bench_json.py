#!/usr/bin/env python3
"""Validates BENCH_core.json: schema plus the backend benchmark entries.

CI's perf-smoke step runs this after bench_micro_core so a refactor that
drops a benchmark, emits malformed JSON, or stops exercising one of the
counting backends fails fast. Timings themselves are NOT asserted (CI
machines are too noisy); the committed BENCH_core.json carries the
trajectory.

Usage: check_bench_json.py <path-to-BENCH_core.json>
"""

import json
import sys

# Benchmarks that must be present: the shared hot paths plus both counting
# backends (the backend-drift tripwire).
REQUIRED = [
    "PositionIndexBuild",
    "ForwardExtensions",
    "ForwardExtensionsReuse",
    "BackwardExtensions",
    "CountOccurrences",
    "BitmapIndexBuild",
    "BitmapForwardExtensions",
    "BitmapForwardExtensionsReuse",
    "BitmapBackwardExtensionsReuse",
    "BitmapQreCountInstances",
    "BitmapCountOccurrences",
    "SparseForwardExtensionsCsr",
    "SparseForwardExtensionsBitmap",
    "HybridSparseForwardExtensions",
    "SimdForwardExtensions",
    "SimdForwardExtensionsReuse",
    "LazyMergedQueryForwardExtensions",
    "LazyMergedQueryCountInstances",
    "EagerMergePeakRssKb",
    "LazyMergePeakRssKb",
    "DbLoadSmdbMmap",
    "DbShardParallel",
    "IncrementalRemine",
    "ColdRemine",
]


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable or malformed JSON: {e}", file=sys.stderr)
        return 1

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        print(f"{path}: missing non-empty 'benchmarks' array", file=sys.stderr)
        return 1

    seen = {}
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict):
            print(f"{path}: benchmarks[{i}] is not an object", file=sys.stderr)
            return 1
        name = entry.get("name")
        ns = entry.get("ns_per_op")
        if not isinstance(name, str) or not name:
            print(f"{path}: benchmarks[{i}] has no name", file=sys.stderr)
            return 1
        if not isinstance(ns, (int, float)) or ns <= 0:
            print(f"{path}: {name}: ns_per_op must be positive, got {ns!r}",
                  file=sys.stderr)
            return 1
        if name in seen:
            print(f"{path}: duplicate benchmark name {name}", file=sys.stderr)
            return 1
        seen[name] = ns

    missing = [name for name in REQUIRED if name not in seen]
    if missing:
        print(f"{path}: missing required benchmarks: {', '.join(missing)}",
              file=sys.stderr)
        return 1

    print(f"{path}: OK ({len(seen)} benchmarks, all {len(REQUIRED)} "
          "required entries present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
