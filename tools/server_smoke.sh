#!/usr/bin/env bash
# End-to-end smoke test for specmined, shared by the Release and
# ASan+UBSan CI jobs: launch on an ephemeral port, poll /healthz, hit
# every route once (mining, corpus registration, metrics), exercise the
# error envelope, then SIGTERM and assert a clean exit 0.
#
# Usage: server_smoke.sh BUILD_DIR   (the directory holding ./specmined)
set -euo pipefail

cd "${1:-.}"

printf 'lock read write unlock lock write unlock\nopen read close lock unlock\nlock read unlock open read read close\nopen write close open read close\nlock unlock lock read write unlock\n' \
  > server_smoke_traces.txt

./specmined --port 0 --corpus demo=server_smoke_traces.txt --quiet \
  > server_smoke.out 2> server_smoke.err &
SPECMINED_PID=$!
trap 'kill "$SPECMINED_PID" 2>/dev/null || true' EXIT

# The first stdout line is "listening on http://HOST:PORT".
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's#^listening on http://[^:]*:##p' server_smoke.out)
  if [ -n "$PORT" ]; then break; fi
  sleep 0.1
done
[ -n "$PORT" ]
BASE="http://127.0.0.1:$PORT"

for _ in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" > healthz.json 2>/dev/null; then break; fi
  sleep 0.1
done
grep '"status": "ok"' healthz.json
grep '"version"' healthz.json

# One request per mining route.
curl -fsS -d '{"corpus": "demo", "min_sup": 0.4}' \
  "$BASE/mine/patterns" | grep -q '"patterns"'
curl -fsS -d '{"corpus": "demo", "min_ssup": 0.4, "min_conf": 0.5}' \
  "$BASE/mine/rules" | grep -q '"rules"'
curl -fsS -d '{"corpus": "demo", "min_sup": 0.4, "closed": true}' \
  "$BASE/mine/seq" | grep -q '"patterns"'
curl -fsS -d '{"corpus": "demo", "window": 5}' \
  "$BASE/mine/episodes" | grep -q '"patterns"'
curl -fsS -d '{"corpus": "demo", "min_sat": 0.5}' \
  "$BASE/mine/pairs" | grep -q '"pairs"'

# Runtime corpus registration, then mine the new corpus.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -d '{"name": "second", "path": "server_smoke_traces.txt"}' "$BASE/corpora")
[ "$code" = 201 ]
curl -fsS "$BASE/corpora" | grep -q '"second"'
curl -fsS -d '{"corpus": "second", "min_sup": 0.4}' \
  "$BASE/mine/patterns" | grep -q '"patterns"'

# Append route: pack a sharded corpus, register it, append traces, and
# check the committed generation both in the response and on re-mine.
./specmine pack server_smoke_traces.txt server_smoke_append.smdbset --shard-bytes 256
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -d '{"name": "growing", "path": "server_smoke_append.smdbset"}' "$BASE/corpora")
[ "$code" = 201 ]
curl -fsS -d '{"traces": ["lock write unlock", "open read close"], "seal": true}' \
  "$BASE/corpora/growing/append" > append.json
grep -q '"appended": 2' append.json
grep -q '"generation": 1' append.json
curl -fsS -d '{"corpus": "growing", "min_sup": 0.4}' \
  "$BASE/mine/patterns" | grep -q '"patterns"'
# Appending to a non-sharded corpus is a clean client error.
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -d '{"traces": ["a b"]}' "$BASE/corpora/demo/append")
[ "$code" = 400 ]

# Error envelope: unknown corpus is 404 with the JSON error body.
curl -s -d '{"corpus": "nope"}' "$BASE/mine/patterns" > notfound.json
grep -q '"http": 404' notfound.json
code=$(curl -s -o /dev/null -w '%{http_code}' \
  -d '{"corpus": "nope"}' "$BASE/mine/patterns")
[ "$code" = 404 ]

# Metrics scrape carries the catalog and the traffic just generated.
curl -fsS "$BASE/metrics" > metrics.out
grep -q '^specmined_requests_total{route="/mine/patterns",code="200"}' metrics.out
grep -q '^specmined_index_cache_misses_total' metrics.out
grep -q '^specmined_mine_backend_total' metrics.out
grep -q '^specmined_corpora 3' metrics.out
grep -q '^specmined_corpus_appends_total 1' metrics.out
grep -q '^specmined_corpus_appended_traces_total 2' metrics.out
grep -q '^specmined_corpus_generation{corpus="growing"} 1' metrics.out

# Clean shutdown: SIGTERM must exit 0.
kill -TERM "$SPECMINED_PID"
trap - EXIT
wait "$SPECMINED_PID"
echo "server smoke: OK"
