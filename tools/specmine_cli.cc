// Thin entry point for the specmine CLI (logic in src/specmine/cli.*,
// which drives every miner through the specmine::Engine session API).

#include <iostream>
#include <string>
#include <vector>

#include "src/specmine/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return specmine::RunCli(args, std::cout, std::cerr);
}
