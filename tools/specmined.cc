// specmined — the long-lived specification-mining server.
//
// Registers one or more corpora at startup, binds an HTTP port, and
// serves the mining API until SIGINT/SIGTERM (clean exit 0, which the CI
// smoke step asserts). The bound address is printed to stdout as the
// first line, so scripts launching with --port 0 can scrape the ephemeral
// port:
//
//   $ specmined --port 0 --corpus demo=traces.txt
//   listening on http://127.0.0.1:40123

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/server/server.h"
#include "src/support/version.h"

namespace {

constexpr const char* kUsage = R"(usage: specmined [options]

options:
  --host H              bind address (default 127.0.0.1)
  --port P              TCP port; 0 picks an ephemeral port (default 8080)
  --corpus NAME=PATH    register a corpus at startup (repeatable); PATH may
                        be plain-text traces, .smdb, or .smdbset
  --integrity MODE      off | header | full checksum verification for
                        .smdb/.smdbset corpora (default header)
  --quarantine          .smdbset corpora: mine the healthy shard subset
                        instead of failing on a bad shard
  --max-concurrent N    mining tasks running at once (default 2)
  --max-queue N         mining requests allowed to wait for a slot; beyond
                        this the server answers 429 (default 8)
  --max-connections N   connection threads alive at once; accepts past this
                        are answered 503 and closed (default 256)
  --idle-timeout N      close a keep-alive connection idle for N seconds;
                        0 disables (default 60)
  --max-body-bytes N    request body cap, answered 413 past it (default 4MiB)
  --quiet               suppress the per-request JSON log on stderr
  --version             print version and exit

Corpora can also be registered at runtime via POST /corpora. The API and
metrics catalog are documented in docs/server.md.
)";

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  specmine::ServerOptions options;
  options.port = 8080;
  options.log = &std::cerr;
  specmine::CorpusOpenOptions corpus_options;
  std::vector<std::pair<std::string, std::string>> corpora;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--version") {
      std::cout << specmine::VersionLine() << '\n';
      return 0;
    }
    if (arg == "--quiet") {
      options.log = nullptr;
      continue;
    }
    if (arg == "--quarantine") {
      corpus_options.quarantine = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) {
      std::cerr << "specmined: " << arg << " needs a value\n" << kUsage;
      return 2;
    }
    if (arg == "--host") {
      options.host = value;
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--corpus") {
      const char* eq = std::strchr(value, '=');
      if (eq == nullptr || eq == value || eq[1] == '\0') {
        std::cerr << "specmined: --corpus wants NAME=PATH, got '" << value
                  << "'\n";
        return 2;
      }
      corpora.emplace_back(std::string(value, eq), std::string(eq + 1));
    } else if (arg == "--integrity") {
      const std::string mode = value;
      if (mode == "off") {
        corpus_options.integrity = specmine::IntegrityMode::kOff;
      } else if (mode == "header") {
        corpus_options.integrity = specmine::IntegrityMode::kHeader;
      } else if (mode == "full") {
        corpus_options.integrity = specmine::IntegrityMode::kFull;
      } else {
        std::cerr << "specmined: --integrity must be off, header or full\n";
        return 2;
      }
    } else if (arg == "--max-concurrent") {
      options.admission.max_concurrent = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-queue") {
      options.admission.max_queued = std::strtoull(value, nullptr, 10);
    } else if (arg == "--max-connections") {
      options.max_connections = std::strtoull(value, nullptr, 10);
    } else if (arg == "--idle-timeout") {
      options.idle_timeout_seconds =
          static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--max-body-bytes") {
      options.limits.max_body_bytes = std::strtoull(value, nullptr, 10);
    } else {
      std::cerr << "specmined: unknown option " << arg << '\n' << kUsage;
      return 2;
    }
  }

  specmine::CorpusRegistry registry;
  for (const auto& [name, path] : corpora) {
    specmine::Status status = registry.Register(name, path, corpus_options);
    if (!status.ok()) {
      std::cerr << "specmined: failed to register corpus '" << name
                << "': " << status.ToString() << '\n';
      return 1;
    }
    std::cerr << "registered corpus '" << name << "' from " << path << '\n';
  }

  specmine::Server server(&registry, options);
  specmine::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "specmined: " << started.ToString() << '\n';
    return 1;
  }
  std::cout << "listening on http://" << options.host << ':' << server.port()
            << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  // SIGPIPE must not kill the server when a client hangs up mid-response.
  std::signal(SIGPIPE, SIG_IGN);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "specmined: shutting down\n";
  server.Stop();
  return 0;
}
