#!/usr/bin/env python3
"""Documentation checks: markdown link integrity and compilable snippets.

Two checks, run over README.md and docs/*.md:

  1. Links. Every inline markdown link [text](target) whose target is not
     an external URL or a pure in-page anchor must point at an existing
     file (resolved relative to the markdown file; #anchors stripped).

  2. Snippets. Every fenced ```cpp block in docs/user_guide.md must be a
     self-contained translation unit: each is extracted to a temp file
     and compiled with `$CXX -std=c++20 -fsyntax-only -I<repo>`. Blocks
     meant as illustration, not code, should use a different info string
     (```sh, ```text).

Exit status is non-zero, with per-finding messages, when any check fails.
Usage: tools/check_docs.py [--repo DIR] [--compiler CXX]
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Inline links: [text](target). Skips images by matching the bang
# separately, and tolerates titles: [t](path "title").
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^```(\S*)\s*$")


def markdown_files(repo):
    files = [os.path.join(repo, "README.md")]
    docs = os.path.join(repo, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def check_links(md_path, repo):
    errors = []
    text = open(md_path, encoding="utf-8").read()
    # Fenced blocks may contain ](...)-shaped noise; strip them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(md_path), path))
        if not os.path.exists(resolved):
            errors.append(
                f"{os.path.relpath(md_path, repo)}: dead link '{target}' "
                f"(resolved to {os.path.relpath(resolved, repo)})")
    return errors


def cpp_snippets(md_path):
    """Yields (start_line, code) per ```cpp fence."""
    snippets, block, lang, start = [], None, None, 0
    for lineno, line in enumerate(
            open(md_path, encoding="utf-8"), start=1):
        fence = FENCE_RE.match(line)
        if fence and block is None:
            lang, block, start = fence.group(1), [], lineno
        elif fence:
            if lang == "cpp":
                snippets.append((start, "".join(block)))
            block, lang = None, None
        elif block is not None:
            block.append(line)
    return snippets


def check_snippets(md_path, repo, compiler):
    errors = []
    for start, code in cpp_snippets(md_path):
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".cc", delete=False) as tmp:
            tmp.write(code)
            tmp_path = tmp.name
        try:
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only", "-Wall",
                 f"-I{repo}", tmp_path],
                capture_output=True, text=True)
            if proc.returncode != 0:
                errors.append(
                    f"{os.path.relpath(md_path, repo)}: snippet at line "
                    f"{start} does not compile:\n{proc.stderr.strip()}")
        finally:
            os.unlink(tmp_path)
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    args = parser.parse_args()

    errors = []
    files = markdown_files(args.repo)
    snippet_total = 0
    for md in files:
        errors.extend(check_links(md, args.repo))
    guide = os.path.join(args.repo, "docs", "user_guide.md")
    if os.path.isfile(guide):
        snippet_total = len(cpp_snippets(guide))
        errors.extend(check_snippets(guide, args.repo, args.compiler))
    else:
        errors.append("docs/user_guide.md is missing")

    for err in errors:
        print(f"check_docs: {err}", file=sys.stderr)
    print(f"check_docs: {len(files)} markdown files, "
          f"{snippet_total} compiled snippets, {len(errors)} errors")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
